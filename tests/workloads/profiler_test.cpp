#include "workloads/profiler.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(BlockProfiler, CountsRequestsAndBlocks) {
  BlockProfiler p;
  p.OnRequest(0, false);
  p.OnRequest(0, false);
  p.OnRequest(64, false);
  EXPECT_EQ(p.total_requests(), 3u);
  EXPECT_EQ(p.distinct_blocks(), 2u);
}

TEST(BlockProfiler, GroupsByReuseCount) {
  BlockProfiler p;
  // Block 0: 3 accesses (2 reuses); blocks 1,2: 1 access (0 reuses).
  for (int i = 0; i < 3; ++i) p.OnRequest(0, false);
  p.OnRequest(64, false);
  p.OnRequest(128, false);
  const auto groups = p.Groups(1);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].reuses, 0u);
  EXPECT_EQ(groups[0].blocks, 2u);
  EXPECT_EQ(groups[1].reuses, 2u);
  EXPECT_EQ(groups[1].blocks, 1u);
}

TEST(BlockProfiler, CostSharesSumToOne) {
  BlockProfiler p;
  for (Addr a = 0; a < 50; ++a) {
    for (Addr touch = 0; touch <= a % 5; ++touch) {
      p.OnRequest(a * 64, false);
    }
  }
  double total = 0;
  for (const auto& g : p.Groups(1)) total += g.cost_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BlockProfiler, BucketsMergeNeighbours) {
  BlockProfiler p;
  for (int i = 0; i < 4; ++i) p.OnRequest(0, false);    // 3 reuses
  for (int i = 0; i < 5; ++i) p.OnRequest(64, false);   // 4 reuses
  const auto groups = p.Groups(4);
  // reuse 3 -> bucket 0; reuse 4 -> bucket 4.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].reuses, 0u);
  EXPECT_EQ(groups[1].reuses, 4u);
}

TEST(BlockProfiler, LastAccessWritebackFraction) {
  BlockProfiler p;
  p.OnRequest(0, false);
  p.OnRequest(0, true);   // last access of block 0 is a writeback
  p.OnRequest(64, true);
  p.OnRequest(64, false);  // last access of block 1 is a read
  EXPECT_DOUBLE_EQ(p.LastAccessWritebackFraction(), 0.5);
}

TEST(BlockProfiler, UniformPageHasAllBlocksInFirstBin) {
  BlockProfiler p;
  // All 64 blocks of page 0 accessed exactly twice: sigma = 0.
  for (std::uint32_t b = 0; b < kBlocksPerPage; ++b) {
    p.OnRequest(b * kBlockBytes, false);
    p.OnRequest(b * kBlockBytes, false);
  }
  const auto u = p.PageReuseUniformity();
  EXPECT_DOUBLE_EQ(u.within_one, 1.0);
  EXPECT_DOUBLE_EQ(u.within_two, 0.0);
}

TEST(BlockProfiler, OutlierBlockLandsOutsideFirstBin) {
  BlockProfiler p;
  for (std::uint32_t b = 0; b < kBlocksPerPage; ++b) {
    p.OnRequest(b * kBlockBytes, false);
  }
  // One block is hammered far beyond its page-mates.
  for (int i = 0; i < 64; ++i) p.OnRequest(0, false);
  const auto u = p.PageReuseUniformity();
  EXPECT_LT(u.within_one, 1.0);
}

}  // namespace
}  // namespace redcache
