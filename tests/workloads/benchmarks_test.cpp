#include "workloads/benchmarks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace redcache {
namespace {

TEST(Benchmarks, AllElevenLabelsPresent) {
  EXPECT_EQ(WorkloadLabels().size(), 11u);
}

TEST(Benchmarks, EveryLabelBuilds) {
  for (const std::string& label : WorkloadLabels()) {
    WorkloadBuildParams p;
    p.num_cores = 4;
    p.scale = 0.05;
    auto trace = MakeWorkload(label, p);
    ASSERT_NE(trace, nullptr) << label;
    EXPECT_EQ(trace->num_cores(), 4u);
    EXPECT_GT(trace->footprint_bytes(), 0u);
    MemRef r;
    EXPECT_TRUE(trace->Next(0, r)) << label << " produced no references";
  }
}

TEST(Benchmarks, UnknownLabelThrows) {
  EXPECT_THROW(MakeWorkload("NOPE", {}), std::invalid_argument);
}

TEST(Benchmarks, DescriptionsNonEmpty) {
  for (const std::string& label : WorkloadLabels()) {
    EXPECT_NE(WorkloadDescription(label), "unknown") << label;
    EXPECT_FALSE(WorkloadDescription(label).empty());
  }
}

TEST(Benchmarks, ScaleShrinksReferenceCount) {
  const auto count_refs = [](double scale) {
    WorkloadBuildParams p;
    p.num_cores = 2;
    p.scale = scale;
    auto trace = MakeWorkload("LREG", p);
    std::uint64_t n = 0;
    MemRef r;
    while (trace->Next(0, r)) n++;
    return n;
  };
  const auto small = count_refs(0.05);
  const auto large = count_refs(0.10);
  EXPECT_GT(large, small);
  EXPECT_NEAR(static_cast<double>(large) / small, 2.0, 0.3);
}

TEST(Benchmarks, DeterministicForFixedSeedSalt) {
  WorkloadBuildParams p;
  p.num_cores = 2;
  p.scale = 0.02;
  auto a = MakeWorkload("RDX", p);
  auto b = MakeWorkload("RDX", p);
  MemRef ra, rb;
  while (a->Next(0, ra)) {
    ASSERT_TRUE(b->Next(0, rb));
    EXPECT_EQ(ra.addr, rb.addr);
  }
}

TEST(Benchmarks, SeedSaltChangesStream) {
  WorkloadBuildParams p;
  p.num_cores = 1;
  p.scale = 0.02;
  auto a = MakeWorkload("HIST", p);
  p.seed_salt = 99;
  auto b = MakeWorkload("HIST", p);
  MemRef ra, rb;
  bool diverged = false;
  for (int i = 0; i < 2000 && a->Next(0, ra) && b->Next(0, rb); ++i) {
    if (ra.addr != rb.addr) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Benchmarks, CoresTouchDisjointPrivateRegions) {
  WorkloadBuildParams p;
  p.num_cores = 2;
  p.scale = 0.05;
  auto trace = MakeWorkload("OCN", p);  // purely private sweeps
  Addr max0 = 0, min1 = ~Addr{0};
  MemRef r;
  while (trace->Next(0, r)) max0 = std::max(max0, r.addr);
  while (trace->Next(1, r)) min1 = std::min(min1, r.addr);
  EXPECT_LT(max0, min1);
}

TEST(Benchmarks, SharedRegionsOverlapAcrossCores) {
  WorkloadBuildParams p;
  p.num_cores = 2;
  p.scale = 0.05;
  auto trace = MakeWorkload("BRN", p);  // shared tree + private particles
  std::set<Addr> blocks0, blocks1;
  MemRef r;
  while (trace->Next(0, r)) blocks0.insert(BlockAlign(r.addr));
  while (trace->Next(1, r)) blocks1.insert(BlockAlign(r.addr));
  bool overlap = false;
  for (const Addr a : blocks0) {
    if (blocks1.count(a)) {
      overlap = true;
      break;
    }
  }
  EXPECT_TRUE(overlap);
}

}  // namespace
}  // namespace redcache
