#include <gtest/gtest.h>

#include <map>

#include "workloads/kernel_trace.hpp"

namespace redcache {
namespace {

Kernel SweepHotKernel() {
  Kernel k;
  k.kind = Kernel::Kind::kSweepHot;
  k.base = 0;
  k.size = 64 * 512;     // cold region
  k.passes = 2;
  k.hot_base = 4_MiB;
  k.hot_size = 64 * 64;  // hot region
  k.p_hot = 0.3;
  k.zipf_s = 1.0;
  k.write_frac = 0.2;
  k.pause_every = 0;
  return k;
}

TEST(SweepHot, ColdSweepAdvancesOnlyOnColdRefs) {
  KernelTrace t("t", {{SweepHotKernel()}}, 5);
  std::map<Addr, int> cold;
  MemRef r;
  while (t.Next(0, r)) {
    if (r.addr < 4_MiB) cold[BlockAlign(r.addr)]++;
  }
  // Two passes: each cold block touched about twice. The kernel's total
  // ref budget is computed from the expected hot/cold split, so the sweep
  // may stop slightly short of (or wrap slightly past) the second pass.
  EXPECT_EQ(cold.size(), 512u);
  int twos = 0;
  for (const auto& [a, n] : cold) {
    EXPECT_GE(n, 1) << a;
    EXPECT_LE(n, 3) << a;
    twos += (n == 2);
  }
  EXPECT_GT(twos, 380);
}

TEST(SweepHot, HotRefsLandInHotRegionWithZipfSkew) {
  KernelTrace t("t", {{SweepHotKernel()}}, 5);
  std::map<Addr, int> hot;
  std::uint64_t hot_refs = 0, total = 0;
  MemRef r;
  while (t.Next(0, r)) {
    total++;
    if (r.addr >= 4_MiB) {
      hot_refs++;
      ASSERT_LT(r.addr, 4_MiB + 64 * 64);
      hot[BlockAlign(r.addr)]++;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot_refs) / total, 0.3, 0.05);
  int max_n = 0;
  for (const auto& [a, n] : hot) max_n = std::max(max_n, n);
  // Zipf: the hottest block far exceeds the mean.
  EXPECT_GT(max_n, 3 * static_cast<int>(hot_refs) / 64);
}

TEST(SweepHot, HotWriteFractionOverride) {
  Kernel k = SweepHotKernel();
  k.write_frac = 0.9;
  k.hot_write_frac = 0.0;
  KernelTrace t("t", {{k}}, 7);
  MemRef r;
  std::uint64_t hot_w = 0, hot_n = 0;
  while (t.Next(0, r)) {
    if (r.addr >= 4_MiB) {
      hot_n++;
      hot_w += r.is_write;
    }
  }
  ASSERT_GT(hot_n, 0u);
  EXPECT_EQ(hot_w, 0u);
}

TEST(SweepHot, RefCountMatchesPredictor) {
  const Kernel k = SweepHotKernel();
  KernelTrace t("t", {{k}}, 9);
  std::uint64_t n = 0;
  MemRef r;
  while (t.Next(0, r)) n++;
  EXPECT_EQ(n, KernelTrace::KernelRefCount(k));
}

}  // namespace
}  // namespace redcache
