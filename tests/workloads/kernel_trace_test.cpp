#include "workloads/kernel_trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace redcache {
namespace {

std::vector<MemRef> Collect(KernelTrace& t, std::uint32_t core) {
  std::vector<MemRef> out;
  MemRef r;
  while (t.Next(core, r)) out.push_back(r);
  return out;
}

Kernel SweepKernel(Addr base, std::uint64_t size, std::uint32_t passes) {
  Kernel k;
  k.kind = Kernel::Kind::kSweep;
  k.base = base;
  k.size = size;
  k.passes = passes;
  k.write_frac = 0.0;
  return k;
}

TEST(KernelTrace, SweepEmitsEveryBlockPerPass) {
  KernelTrace t("t", {{SweepKernel(0, 64 * 16, 2)}}, 1);
  const auto refs = Collect(t, 0);
  ASSERT_EQ(refs.size(), 32u);
  std::map<Addr, int> counts;
  for (const auto& r : refs) counts[BlockAlign(r.addr)]++;
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [addr, n] : counts) EXPECT_EQ(n, 2) << addr;
}

TEST(KernelTrace, SweepRespectsBase) {
  KernelTrace t("t", {{SweepKernel(1_MiB, 64 * 4, 1)}}, 1);
  const auto refs = Collect(t, 0);
  for (const auto& r : refs) {
    EXPECT_GE(r.addr, 1_MiB);
    EXPECT_LT(r.addr, 1_MiB + 256);
  }
}

TEST(KernelTrace, TiledVisitsTilesSequentially) {
  Kernel k;
  k.kind = Kernel::Kind::kTiled;
  k.base = 0;
  k.size = 4096;          // 2 tiles of 2 KiB
  k.tile_bytes = 2048;
  k.tile_passes = 3;
  k.write_frac = 0.0;
  KernelTrace t("t", {{k}}, 1);
  const auto refs = Collect(t, 0);
  ASSERT_EQ(refs.size(), 2u * 32 * 3);  // 32 blocks/tile * 3 passes * 2 tiles
  // First half of the trace stays inside tile 0.
  for (std::size_t i = 0; i < refs.size() / 2; ++i) {
    EXPECT_LT(refs[i].addr, 2048u);
  }
  for (std::size_t i = refs.size() / 2; i < refs.size(); ++i) {
    EXPECT_GE(refs[i].addr, 2048u);
  }
}

TEST(KernelTrace, HotStaysInRegionAndSkews) {
  Kernel k;
  k.kind = Kernel::Kind::kHot;
  k.base = 4096;
  k.size = 64 * 1024;
  k.refs = 20000;
  k.zipf_s = 1.0;
  KernelTrace t("t", {{k}}, 7);
  std::map<Addr, int> counts;
  MemRef r;
  while (t.Next(0, r)) {
    ASSERT_GE(r.addr, 4096u);
    ASSERT_LT(r.addr, 4096u + 64 * 1024);
    counts[BlockAlign(r.addr)]++;
  }
  // Skew: the most popular block sees far more than the mean.
  int max_count = 0;
  for (const auto& [_, n] : counts) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 3 * 20000 / 1024);
}

TEST(KernelTrace, ScatterCoversRegion) {
  Kernel k;
  k.kind = Kernel::Kind::kScatter;
  k.base = 0;
  k.size = 64 * 256;
  k.refs = 5000;
  KernelTrace t("t", {{k}}, 3);
  std::set<Addr> blocks;
  MemRef r;
  while (t.Next(0, r)) blocks.insert(BlockAlign(r.addr));
  EXPECT_GT(blocks.size(), 200u);  // most of the 256 blocks touched
}

TEST(KernelTrace, ScatterHotSplitsTraffic) {
  Kernel k;
  k.kind = Kernel::Kind::kScatterHot;
  k.base = 0;
  k.size = 1_MiB;
  k.hot_base = 8_MiB;
  k.hot_size = 64 * 1024;
  k.p_hot = 0.5;
  k.refs = 10000;
  KernelTrace t("t", {{k}}, 5);
  std::uint64_t hot = 0, cold = 0;
  MemRef r;
  while (t.Next(0, r)) {
    if (r.addr >= 8_MiB) hot++; else cold++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / (hot + cold), 0.5, 0.05);
}

TEST(KernelTrace, WriteFractionHonored) {
  Kernel k = SweepKernel(0, 64 * 4096, 4);
  k.write_frac = 0.3;
  KernelTrace t("t", {{k}}, 11);
  std::uint64_t writes = 0, total = 0;
  MemRef r;
  while (t.Next(0, r)) {
    total++;
    writes += r.is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.3, 0.03);
}

TEST(KernelTrace, DeterministicAcrossInstances) {
  const auto make = [] {
    Kernel k;
    k.kind = Kernel::Kind::kScatter;
    k.base = 0;
    k.size = 1_MiB;
    k.refs = 1000;
    return KernelTrace("t", {{k}}, 42);
  };
  auto a = make();
  auto b = make();
  MemRef ra, rb;
  while (a.Next(0, ra)) {
    ASSERT_TRUE(b.Next(0, rb));
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.is_write, rb.is_write);
    EXPECT_EQ(ra.gap, rb.gap);
  }
  EXPECT_FALSE(b.Next(0, rb));
}

TEST(KernelTrace, CoresHaveIndependentStreams) {
  Kernel k;
  k.kind = Kernel::Kind::kScatter;
  k.base = 0;
  k.size = 1_MiB;
  k.refs = 100;
  KernelTrace t("t", {{k}, {k}}, 42);
  MemRef r0, r1;
  ASSERT_TRUE(t.Next(0, r0));
  ASSERT_TRUE(t.Next(1, r1));
  EXPECT_NE(r0.addr, r1.addr);  // different per-core seeds
}

TEST(KernelTrace, MultiKernelProgramRunsInOrder) {
  KernelTrace t("t", {{SweepKernel(0, 256, 1), SweepKernel(1_MiB, 256, 1)}},
                1);
  const auto refs = Collect(t, 0);
  ASSERT_EQ(refs.size(), 8u);
  for (int i = 0; i < 4; ++i) EXPECT_LT(refs[i].addr, 1_MiB);
  for (int i = 4; i < 8; ++i) EXPECT_GE(refs[i].addr, 1_MiB);
}

TEST(KernelTrace, GapsPositiveAndNearMean) {
  Kernel k = SweepKernel(0, 64 * 8192, 2);
  k.gap_mean = 6;
  k.pause_every = 0;  // disable compute stretches for the mean check
  KernelTrace t("t", {{k}}, 9);
  double sum = 0;
  std::uint64_t n = 0;
  MemRef r;
  while (t.Next(0, r)) {
    EXPECT_GE(r.gap, 1u);
    sum += r.gap;
    n++;
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 6.0, 1.0);
}

TEST(KernelTrace, FootprintCoversRegions) {
  KernelTrace t("t", {{SweepKernel(0, 1_MiB, 1), SweepKernel(4_MiB, 1_MiB, 1)}},
                1);
  EXPECT_EQ(t.footprint_bytes(), 5_MiB);
}

}  // namespace
}  // namespace redcache
