// Golden-stats regression: every Table II workload under every registry
// policy that opts in (PolicyInfo::golden — Alloy, BEAR, RedCache, plus
// the Banshee and TicToc rival families) is pinned to the exact counters
// recorded in tests/verify/golden/golden_stats.json.
//
// Intentional behaviour changes regenerate the file with
//   REDCACHE_UPDATE_GOLDEN=1 ctest -R Golden
// and the diff goes into the same commit as the change that caused it.
#include "verify/golden.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <tuple>

#include "dramcache/policy_registry.hpp"

namespace redcache {
namespace {

constexpr double kGoldenScale = 0.02;

std::vector<std::string> GoldenPolicies() {
  return PolicyRegistry::Instance().GoldenNames();
}

RunSpec SpecFor(const std::string& policy, const std::string& workload) {
  RunSpec spec;
  spec.policy = policy;
  spec.workload = workload;
  spec.scale = kGoldenScale;
  spec.seed = 1;
  return spec;
}

/// The pinned 2-tenant mix cell: LU + RDX co-scheduled at golden scale.
/// Mix records pin the per-tenant counters too (see CollectGolden), so QoS
/// attribution drift fails the same way end-to-end drift does.
RunSpec MixSpecFor(const std::string& policy) {
  RunSpec spec;
  spec.policy = policy;
  spec.scale = kGoldenScale;
  spec.seed = 1;
  tenant::TenantSpec lu;
  lu.workload = "LU";
  tenant::TenantSpec rdx;
  rdx.workload = "RDX";
  spec.mix.tenants = {lu, rdx};
  return spec;
}

std::string GoldenPath() {
  return std::string(REDCACHE_GOLDEN_DIR) + "/golden_stats.json";
}

bool UpdateMode() {
  const char* env = std::getenv("REDCACHE_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

/// The golden numbers are absolute, so the ambient scale override must not
/// leak in.
void NeutralizeScaleEnv() { ::unsetenv("REDCACHE_REFS_SCALE"); }

TEST(GoldenStats, RegistryExportsExpectedPolicies) {
  const std::vector<std::string> policies = GoldenPolicies();
  for (const char* required :
       {"Alloy", "Bear", "RedCache", "Banshee", "TicToc"}) {
    EXPECT_NE(std::find(policies.begin(), policies.end(), required),
              policies.end())
        << required << " missing from the golden set";
  }
}

TEST(GoldenStats, SerializationRoundTrips) {
  GoldenTable table;
  table["Alloy/LU/eval@scale=0.02,seed=1"] = {{"a", 1}, {"b", 22}};
  table["RedCache/FT/eval@scale=0.02,seed=1"] = {{"x", 0}};
  const std::string text = SerializeGolden(table);
  GoldenTable parsed;
  std::string error;
  ASSERT_TRUE(ParseGolden(text, parsed, error)) << error;
  EXPECT_EQ(parsed, table);
  // Serialization is canonical: a second pass is byte-identical.
  EXPECT_EQ(SerializeGolden(parsed), text);
}

TEST(GoldenStats, ParserRejectsMalformedInput) {
  GoldenTable out;
  std::string error;
  EXPECT_FALSE(ParseGolden("{\"a\": {\"b\": }}", out, error));
  EXPECT_FALSE(ParseGolden("not json", out, error));
  EXPECT_FALSE(ParseGolden("{\"a\"", out, error));
  EXPECT_TRUE(ParseGolden("{}", out, error)) << error;
}

TEST(GoldenStats, CollectionIsDeterministic) {
  NeutralizeScaleEnv();
  const RunSpec spec = SpecFor("Alloy", "IS");
  const GoldenRecord a = CollectGolden(spec);
  const GoldenRecord b = CollectGolden(spec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.at("completed"), 1u);
}

/// Regenerates the whole golden file; only runs with REDCACHE_UPDATE_GOLDEN.
TEST(GoldenStats, Regenerate) {
  if (!UpdateMode()) {
    GTEST_SKIP() << "set REDCACHE_UPDATE_GOLDEN=1 to regenerate "
                 << GoldenPath();
  }
  NeutralizeScaleEnv();
  GoldenTable table;
  for (const std::string& policy : GoldenPolicies()) {
    for (const std::string& wl : WorkloadLabels()) {
      const RunSpec spec = SpecFor(policy, wl);
      table[GoldenKey(spec)] = CollectGolden(spec);
    }
    const RunSpec mix = MixSpecFor(policy);
    table[GoldenKey(mix)] = CollectGolden(mix);
  }
  ASSERT_TRUE(WriteGoldenFile(GoldenPath(), table));
  std::printf("wrote %zu golden records to %s\n", table.size(),
              GoldenPath().c_str());
}

class GoldenCompare
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(GoldenCompare, MatchesGoldenFile) {
  if (UpdateMode()) {
    GTEST_SKIP() << "regeneration run; comparisons are meaningless";
  }
  NeutralizeScaleEnv();
  const auto [policy, workload] = GetParam();
  GoldenTable golden;
  std::string error;
  ASSERT_TRUE(ReadGoldenFile(GoldenPath(), golden, error))
      << error << " — regenerate with REDCACHE_UPDATE_GOLDEN=1";

  const RunSpec spec = SpecFor(policy, workload);
  const std::string key = GoldenKey(spec);
  auto it = golden.find(key);
  ASSERT_NE(it, golden.end())
      << key << " missing; regenerate with REDCACHE_UPDATE_GOLDEN=1";

  const GoldenTable expected = {{key, it->second}};
  const GoldenTable actual = {{key, CollectGolden(spec)}};
  const auto diffs = DiffGolden(expected, actual);
  std::ostringstream msg;
  for (const auto& d : diffs) msg << "  " << d << "\n";
  EXPECT_TRUE(diffs.empty())
      << "golden drift (intentional? REDCACHE_UPDATE_GOLDEN=1):\n"
      << msg.str();
}

std::string CompareName(
    const ::testing::TestParamInfo<GoldenCompare::ParamType>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GoldenCompare,
    ::testing::Combine(::testing::ValuesIn(GoldenPolicies()),
                       ::testing::ValuesIn(WorkloadLabels())),
    CompareName);

/// The 2-tenant mix cell per golden policy, including tenant<N>.* counters.
class GoldenMixCompare : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenMixCompare, MatchesGoldenFile) {
  if (UpdateMode()) {
    GTEST_SKIP() << "regeneration run; comparisons are meaningless";
  }
  NeutralizeScaleEnv();
  GoldenTable golden;
  std::string error;
  ASSERT_TRUE(ReadGoldenFile(GoldenPath(), golden, error))
      << error << " — regenerate with REDCACHE_UPDATE_GOLDEN=1";

  const RunSpec spec = MixSpecFor(GetParam());
  const std::string key = GoldenKey(spec);
  auto it = golden.find(key);
  ASSERT_NE(it, golden.end())
      << key << " missing; regenerate with REDCACHE_UPDATE_GOLDEN=1";

  const GoldenTable expected = {{key, it->second}};
  const GoldenTable actual = {{key, CollectGolden(spec)}};
  const auto diffs = DiffGolden(expected, actual);
  std::ostringstream msg;
  for (const auto& d : diffs) msg << "  " << d << "\n";
  EXPECT_TRUE(diffs.empty())
      << "golden drift (intentional? REDCACHE_UPDATE_GOLDEN=1):\n"
      << msg.str();
}

std::string MixCompareName(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, GoldenMixCompare,
                         ::testing::ValuesIn(GoldenPolicies()),
                         MixCompareName);

}  // namespace
}  // namespace redcache
