// Differential fuzzing: seeded adversarial traces through every registry
// policy that opts into differential testing, under the shadow checker.
//
// The tier-1 run covers a modest number of seeds so the suite stays fast;
// set REDCACHE_FUZZ_TRACES=1000 (or run `ctest -C soak`) for the full
// campaign. A failing trace is persisted as a replayable corpus case (set
// REDCACHE_CORPUS_OUT to choose the directory) so it can be checked in
// under tests/verify/corpus/ as a permanent regression test.
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "dramcache/policy_registry.hpp"
#include "verify/corpus.hpp"

namespace redcache {
namespace {

std::uint64_t TraceCount() {
  if (const char* env = std::getenv("REDCACHE_FUZZ_TRACES")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 20;
}

DifferentialParams SmallParams(std::uint64_t seed) {
  DifferentialParams p;
  p.trace.seed = seed;
  p.trace.cores = 4;
  p.trace.refs_per_core = 1200;
  p.trace.region_pages = 64;
  p.trace.hot_pages = 6;
  // EvalPreset: 4 MiB HBM cache => direct-mapped alias distance.
  p.trace.conflict_stride_bytes = 4_MiB;
  return p;
}

std::string Join(const std::vector<std::string>& lines) {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const std::string& l : lines) {
    out << "  " << l << "\n";
    if (++shown == 20) {
      out << "  ... (" << lines.size() - shown << " more)\n";
      break;
    }
  }
  return out.str();
}

/// Save a failing trace as a corpus case and name the file in the failure
/// message so it can be replayed and checked in.
std::string Persist(const DifferentialParams& params,
                    const std::vector<std::string>& errors) {
  const char* dir = std::getenv("REDCACHE_CORPUS_OUT");
  const std::string path = PersistCounterexample(
      params, errors, dir != nullptr ? dir : "fuzz_counterexamples");
  return path.empty() ? "(corpus write failed)"
                      : "counterexample saved to " + path;
}

TEST(FuzzDifferential, RegistryExportsAtLeastSixPolicies) {
  // The N-policy harness enumerates the registry; the seed's six mechanisms
  // plus the Banshee and TicToc families must all be opted in.
  const std::vector<std::string> policies = DifferentialPolicies();
  EXPECT_GE(policies.size(), 8u);
  for (const char* required :
       {"No-HBM", "IDEAL", "Alloy", "Bear", "Red-Basic", "RedCache",
        "Banshee", "TicToc"}) {
    EXPECT_NE(std::find(policies.begin(), policies.end(), required),
              policies.end())
        << required << " missing from the differential set";
  }
}

TEST(FuzzDifferential, AllPoliciesAgreeOverSeededTraces) {
  const std::uint64_t traces = TraceCount();
  std::uint64_t total_events = 0;
  for (std::uint64_t seed = 1; seed <= traces; ++seed) {
    const DifferentialParams params = SmallParams(seed);
    const DifferentialResult res = RunDifferential(params);
    ASSERT_TRUE(res.ok()) << "seed " << seed << ":\n"
                          << Join(res.errors) << Persist(params, res.errors);
    ASSERT_EQ(res.outcomes.size(), DifferentialPolicies().size());
    for (const auto& o : res.outcomes) {
      EXPECT_TRUE(o.completed) << o.policy << " seed " << seed;
      EXPECT_EQ(o.divergences, 0u) << o.policy << " seed " << seed;
      EXPECT_GT(o.reads_checked, 0u) << o.policy << " seed " << seed;
    }
    total_events += res.total_model_events();
  }
  // The traces must actually exercise the semantic hooks, not just time out
  // in uninstrumented corners.
  EXPECT_GT(total_events, traces * 1000);
}

TEST(FuzzDifferential, TwoTenantMixesAgreeAcrossPolicies) {
  // Co-scheduled adversarial streams through the full N-policy harness:
  // per-tenant counters must partition the totals under the shadow checker,
  // and every policy must consume the identical per-tenant streams.
  for (std::uint64_t seed = 3; seed <= 9; seed += 3) {
    DifferentialParams params = SmallParams(seed);
    params.tenants = 2;
    const DifferentialResult res = RunDifferential(params);
    ASSERT_TRUE(res.ok()) << "mix seed " << seed << ":\n"
                          << Join(res.errors) << Persist(params, res.errors);
    ASSERT_EQ(res.outcomes.size(), DifferentialPolicies().size());
    const auto& first = res.outcomes.front();
    for (const auto& o : res.outcomes) {
      EXPECT_TRUE(o.completed) << o.policy << " mix seed " << seed;
      ASSERT_EQ(o.tenant_refs.size(), 2u) << o.policy;
      EXPECT_GT(o.tenant_refs[0], 0u) << o.policy << ": tenant 0 starved";
      EXPECT_GT(o.tenant_refs[1], 0u) << o.policy << ": tenant 1 starved";
      EXPECT_EQ(o.tenant_refs[0] + o.tenant_refs[1], o.core_refs)
          << o.policy << ": tenant counters do not partition core.refs";
      EXPECT_EQ(o.tenant_refs, first.tenant_refs)
          << o.policy << " consumed a different per-tenant stream than "
          << first.policy;
    }
  }
}

TEST(FuzzDifferential, SameSeedIsBitwiseRepeatable) {
  const DifferentialResult a = RunDifferential(SmallParams(7));
  const DifferentialResult b = RunDifferential(SmallParams(7));
  ASSERT_TRUE(a.ok()) << Join(a.errors);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].core_refs, b.outcomes[i].core_refs);
    EXPECT_EQ(a.outcomes[i].reads_checked, b.outcomes[i].reads_checked);
    EXPECT_EQ(a.outcomes[i].model_events, b.outcomes[i].model_events);
  }
}

TEST(FuzzDifferential, TraceGeneratorIsDeterministicPerSeed) {
  const FuzzTraceParams params = SmallParams(11).trace;
  FuzzTraceSource a(params), b(params);
  ASSERT_EQ(a.num_cores(), b.num_cores());
  for (std::uint32_t core = 0; core < a.num_cores(); ++core) {
    MemRef ra, rb;
    while (true) {
      const bool ha = a.Next(core, ra);
      const bool hb = b.Next(core, rb);
      ASSERT_EQ(ha, hb);
      if (!ha) break;
      ASSERT_EQ(ra.addr, rb.addr);
      ASSERT_EQ(ra.is_write, rb.is_write);
      ASSERT_EQ(ra.gap, rb.gap);
    }
  }
}

TEST(FuzzDifferential, DistinctSeedsProduceDistinctTraces) {
  FuzzTraceParams pa = SmallParams(1).trace;
  FuzzTraceParams pb = SmallParams(2).trace;
  FuzzTraceSource a(pa), b(pb);
  MemRef ra, rb;
  bool differ = false;
  while (a.Next(0, ra) && b.Next(0, rb)) {
    if (ra.addr != rb.addr || ra.is_write != rb.is_write) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace redcache
