// ShadowChecker + reference-model tests: the positive paths (instrumented
// policies run divergence-free) and — more importantly — the negative
// paths: every injected bug class must actually be caught.
#include "verify/shadow_checker.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/check.hpp"
#include "dramcache/no_hbm.hpp"
#include "dramcache/redcache.hpp"
#include "sim/runner.hpp"
#include "verify/fault_injector.hpp"
#include "verify/ref_model.hpp"

#include "../dramcache/controller_harness.hpp"

namespace redcache {
namespace {

bool AnyMessageContains(const ShadowChecker& checker,
                        const std::string& needle) {
  for (const std::string& msg : checker.divergence_messages()) {
    if (msg.find(needle) != std::string::npos) return true;
  }
  return false;
}

bool AnyDivergenceContains(const RefMemoryModel& model,
                           const std::string& needle) {
  for (const auto& d : model.divergences()) {
    if (d.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

// --- reference model unit tests -------------------------------------------

TEST(RefModel, CleanLifecycleHasNoDivergences) {
  RefMemoryModel m;
  m.OnWritebackSubmitted(0x40);
  m.OnFill(0x40, /*dirty=*/true);       // write-allocate consumes the write
  m.OnServeRead(0x40, ServeSource::kCache);
  m.OnVictimWriteback(0x40);            // dirty copy reaches main memory
  m.OnServeRead(0x40, ServeSource::kMainMemory);
  m.CheckDrained();
  EXPECT_TRUE(m.divergences().empty());
}

TEST(RefModel, InvalidatingNewestDirtyCopyIsALostWrite) {
  RefMemoryModel m;
  m.OnWritebackSubmitted(0x40);
  m.OnFill(0x40, /*dirty=*/true);
  m.OnInvalidate(0x40);
  ASSERT_FALSE(m.divergences().empty());
  EXPECT_TRUE(AnyDivergenceContains(m, "lost write"));
}

TEST(RefModel, StaleCacheServeAfterAppliedWrite) {
  RefMemoryModel m;
  m.OnFill(0x80, /*dirty=*/false);      // clean copy of the initial image
  m.OnWritebackSubmitted(0x80);
  m.OnMmWrite(0x80);                    // policy routed the write around
  m.OnServeRead(0x80, ServeSource::kCache);  // ...but serves the old copy
  ASSERT_FALSE(m.divergences().empty());
  EXPECT_TRUE(AnyDivergenceContains(m, "stale cache serve"));
}

TEST(RefModel, ServeRacingPendingWriteIsTolerated) {
  RefMemoryModel m;
  m.OnFill(0x80, /*dirty=*/false);
  m.OnWritebackSubmitted(0x80);         // still pending, not applied
  m.OnServeRead(0x80, ServeSource::kCache);
  EXPECT_TRUE(m.divergences().empty());
}

TEST(RefModel, SpuriousDeviceWriteIsFlagged) {
  RefMemoryModel m;
  m.OnMmWrite(0x40);                    // nothing was ever submitted
  ASSERT_FALSE(m.divergences().empty());
  EXPECT_TRUE(AnyDivergenceContains(m, "none pending"));
}

TEST(RefModel, DrainFlagsUnconsumedWriteback) {
  RefMemoryModel m;
  m.OnWritebackSubmitted(0x40);
  m.CheckDrained();
  ASSERT_FALSE(m.divergences().empty());
  EXPECT_TRUE(AnyDivergenceContains(m, "never consumed"));
}

TEST(RefModel, RcuServeOfPreWriteCopyIsStale) {
  // The bug pattern the RCU block cache can hit: a read parks a copy, a
  // write updates the cache, the parked copy serves the next read.
  RefMemoryModel m;
  m.OnFill(0xc0, /*dirty=*/false);
  m.OnWritebackSubmitted(0xc0);
  m.OnCacheWrite(0xc0);                 // write applied in the cache
  m.OnServeRead(0xc0, ServeSource::kCache);   // current copy: fine
  EXPECT_TRUE(m.divergences().empty());
  m.OnWritebackSubmitted(0xc0);
  m.OnMmWrite(0xc0);                    // newer write went to main memory
  m.OnServeRead(0xc0, ServeSource::kRcuRam);  // parked pre-write copy
  EXPECT_TRUE(AnyDivergenceContains(m, "stale cache serve"));
}

// --- end-to-end positive: instrumented policies are divergence-free -------

TEST(ShadowChecker, FullRunsAreDivergenceFree) {
  for (Arch arch : {Arch::kRedCache, Arch::kBear}) {
    RunSpec spec;
    spec.arch = arch;
    spec.workload = "IS";
    spec.scale = 0.02;
    spec.verify = true;  // strict: any divergence throws
    const RunResult r = RunOne(spec);
    EXPECT_TRUE(r.completed) << ToString(arch);
    EXPECT_EQ(r.stats.GetCounter("verify.divergences"), 0u) << ToString(arch);
    EXPECT_GT(r.stats.GetCounter("verify.model_events"), 0u) << ToString(arch);
  }
}

// --- negative: injected bugs must be caught -------------------------------

/// RedCache with every admission filter off, so fills and dirty victims are
/// plentiful, and the test-only lost-write fault armed.
std::unique_ptr<MemController> LeakyRedCache(bool drop_victims) {
  RedCacheOptions opt;
  opt.alpha_enabled = false;
  opt.gamma_enabled = false;
  opt.update_mode = RedCacheOptions::UpdateMode::kInSitu;
  opt.bypass_on_refresh = false;
  opt.testing_drop_victim_writeback = drop_victims;
  return std::make_unique<RedCacheController>(SmallMemConfig(), opt,
                                              "leaky-redcache");
}

TEST(ShadowChecker, CatchesDroppedVictimWriteback) {
  auto checker = std::make_unique<ShadowChecker>(LeakyRedCache(true));
  ShadowChecker* shadow = checker.get();
  ControllerHarness h(std::move(checker));

  h.Writeback(0x40);             // write-allocates: dirty line in the cache
  h.RunToIdle();
  h.Read(0x40 + 1_MiB);          // direct-mapped alias evicts the dirty line
  h.RunUntilCompletions(1);
  h.RunToIdle();
  shadow->CheckDrained();

  EXPECT_GT(shadow->divergence_count(), 0u);
  EXPECT_TRUE(AnyMessageContains(*shadow, "lost write")) << shadow->Summary();
}

TEST(ShadowChecker, SameScenarioWithoutFaultIsClean) {
  auto checker = std::make_unique<ShadowChecker>(LeakyRedCache(false));
  ShadowChecker* shadow = checker.get();
  ControllerHarness h(std::move(checker));

  h.Writeback(0x40);
  h.RunToIdle();
  h.Read(0x40 + 1_MiB);
  h.RunUntilCompletions(1);
  h.RunToIdle();
  shadow->CheckDrained();

  EXPECT_EQ(shadow->divergence_count(), 0u) << shadow->Summary();
}

TEST(ShadowChecker, CatchesWritebackSwallowedBelowTheCheckpoint) {
  FaultInjector::Options faults;
  faults.drop_every_nth_writeback = 1;  // every CPU writeback vanishes
  auto checker = std::make_unique<ShadowChecker>(
      std::make_unique<FaultInjector>(
          std::make_unique<NoHbmController>(SmallMemConfig()), faults));
  ShadowChecker* shadow = checker.get();
  ControllerHarness h(std::move(checker));

  h.Read(0x1000);  // a served read arms the semantic checks
  h.RunUntilCompletions(1);
  h.Writeback(0x2000);
  h.RunToIdle();
  shadow->CheckDrained();

  EXPECT_GT(shadow->divergence_count(), 0u);
  EXPECT_TRUE(AnyMessageContains(*shadow, "never consumed"))
      << shadow->Summary();
}

TEST(ShadowChecker, CatchesDuplicatedCompletions) {
  FaultInjector::Options faults;
  faults.duplicate_every_nth_completion = 1;
  auto checker = std::make_unique<ShadowChecker>(
      std::make_unique<FaultInjector>(
          std::make_unique<NoHbmController>(SmallMemConfig()), faults));
  ShadowChecker* shadow = checker.get();
  ControllerHarness h(std::move(checker));

  h.Read(0x1000);
  h.RunUntilCompletions(2);  // the duplicate arrives as a second completion

  EXPECT_GT(shadow->divergence_count(), 0u);
  EXPECT_TRUE(AnyMessageContains(*shadow, "not outstanding"))
      << shadow->Summary();
}

TEST(ShadowChecker, StrictModeThrowsAtTheFaultingEvent) {
  ShadowChecker::Options opts;
  opts.strict = true;
  auto checker =
      std::make_unique<ShadowChecker>(LeakyRedCache(true), opts);
  ShadowChecker* shadow = checker.get();
  ControllerHarness h(std::move(checker));

  h.Writeback(0x40);
  h.RunToIdle();
  EXPECT_THROW(
      {
        h.Read(0x40 + 1_MiB);
        h.RunToIdle();
        shadow->CheckDrained();
      },
      ShadowChecker::VerifyError);
}

// --- REDCACHE_CHECK stays armed in release builds -------------------------

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(REDCACHE_CHECK(1 == 2, "intentional test failure"),
               "intentional test failure");
}

TEST(CheckDeathTest, OverflowingTheInputQueueAborts) {
  // CanAcceptRead() says no at the cap; submitting anyway must abort
  // instead of silently corrupting the queue.
  NoHbmController ctrl(SmallMemConfig());
  const std::uint32_t cap = SmallMemConfig().input_queue_cap;
  for (std::uint32_t i = 0; i < cap; ++i) {
    ctrl.SubmitRead(i * kBlockBytes, i + 1, 0);
  }
  EXPECT_FALSE(ctrl.CanAcceptRead());
  EXPECT_DEATH(ctrl.SubmitRead(cap * kBlockBytes, cap + 1, 0),
               "full input queue");
}

}  // namespace
}  // namespace redcache
