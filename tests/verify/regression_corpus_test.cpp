// Replay every checked-in corpus case (tests/verify/corpus/*.trace) through
// the differential harness and require a clean result.
//
// The corpus holds two kinds of cases: hand-crafted adversarial traces
// aimed at a specific policy family's worst pattern, and fuzzer-found
// counterexamples persisted by fuzz_differential_test when a campaign
// fails. Once a file lands here, the failure it captured can never
// silently return.
#include "verify/corpus.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dramcache/policy_registry.hpp"

#ifndef REDCACHE_CORPUS_DIR
#error "REDCACHE_CORPUS_DIR must point at tests/verify/corpus"
#endif

namespace redcache {
namespace {

std::string Join(const std::vector<std::string>& lines) {
  std::ostringstream out;
  for (const std::string& l : lines) out << "  " << l << "\n";
  return out.str();
}

std::vector<std::string> CorpusFiles() {
  return ListCorpusFiles(REDCACHE_CORPUS_DIR);
}

TEST(RegressionCorpus, CorpusIsNotEmpty) {
  // At minimum the hand-crafted adversarial cases for the Banshee and
  // TicToc families must be present.
  const std::vector<std::string> files = CorpusFiles();
  ASSERT_GE(files.size(), 2u) << "corpus dir: " << REDCACHE_CORPUS_DIR;
}

TEST(RegressionCorpus, EveryCaseParsesAndNamesKnownPolicies) {
  for (const std::string& path : CorpusFiles()) {
    CorpusCase c;
    std::string error;
    ASSERT_TRUE(ReadCorpusFile(path, c, error)) << path << ": " << error;
    EXPECT_FALSE(c.name.empty());
    ASSERT_FALSE(c.params.policies.empty()) << path;
    for (const std::string& policy : c.params.policies) {
      EXPECT_TRUE(PolicyRegistry::Instance().Has(policy))
          << path << " names unregistered policy '" << policy << "'";
    }
  }
}

TEST(RegressionCorpus, EveryCaseReplaysClean) {
  for (const std::string& path : CorpusFiles()) {
    CorpusCase c;
    std::string error;
    ASSERT_TRUE(ReadCorpusFile(path, c, error)) << path << ": " << error;
    const DifferentialResult res = RunDifferential(c.params);
    EXPECT_TRUE(res.ok()) << c.name << ":\n" << Join(res.errors);
    for (const auto& o : res.outcomes) {
      EXPECT_TRUE(o.completed) << c.name << "/" << o.policy;
      EXPECT_EQ(o.divergences, 0u) << c.name << "/" << o.policy;
    }
  }
}

TEST(RegressionCorpus, SerializationRoundTrips) {
  CorpusCase c;
  c.name = "roundtrip";
  c.note = "line one\nline two";
  c.params.trace.seed = 424242;
  c.params.trace.cores = 3;
  c.params.trace.refs_per_core = 777;
  c.params.trace.region_pages = 33;
  c.params.trace.hot_pages = 5;
  c.params.trace.conflict_stride_bytes = 8_MiB;
  c.params.trace.hot_weight = 11;
  c.params.trace.burst_weight = 22;
  c.params.trace.conflict_weight = 33;
  c.params.trace.row_storm_weight = 44;
  c.params.trace.write_weight = 55;
  c.params.trace.idle_every = 66;
  c.params.trace.idle_gap_cycles = 77;
  c.params.max_cycles = 123456789;
  c.params.policies = {"Banshee", "TicToc"};

  CorpusCase parsed;
  std::string error;
  ASSERT_TRUE(ParseCorpusCase(SerializeCorpusCase(c), parsed, error)) << error;
  EXPECT_EQ(parsed.params.trace.seed, c.params.trace.seed);
  EXPECT_EQ(parsed.params.trace.cores, c.params.trace.cores);
  EXPECT_EQ(parsed.params.trace.refs_per_core, c.params.trace.refs_per_core);
  EXPECT_EQ(parsed.params.trace.region_pages, c.params.trace.region_pages);
  EXPECT_EQ(parsed.params.trace.hot_pages, c.params.trace.hot_pages);
  EXPECT_EQ(parsed.params.trace.conflict_stride_bytes,
            c.params.trace.conflict_stride_bytes);
  EXPECT_EQ(parsed.params.trace.hot_weight, c.params.trace.hot_weight);
  EXPECT_EQ(parsed.params.trace.burst_weight, c.params.trace.burst_weight);
  EXPECT_EQ(parsed.params.trace.conflict_weight,
            c.params.trace.conflict_weight);
  EXPECT_EQ(parsed.params.trace.row_storm_weight,
            c.params.trace.row_storm_weight);
  EXPECT_EQ(parsed.params.trace.write_weight, c.params.trace.write_weight);
  EXPECT_EQ(parsed.params.trace.idle_every, c.params.trace.idle_every);
  EXPECT_EQ(parsed.params.trace.idle_gap_cycles,
            c.params.trace.idle_gap_cycles);
  EXPECT_EQ(parsed.params.max_cycles, c.params.max_cycles);
  EXPECT_EQ(parsed.params.policies, c.params.policies);
}

TEST(RegressionCorpus, MalformedInputIsRejected) {
  CorpusCase out;
  std::string error;
  EXPECT_FALSE(ParseCorpusCase("seed 17\n", out, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseCorpusCase("mystery_knob = 3\n", out, error));
  EXPECT_NE(error.find("mystery_knob"), std::string::npos);
}

}  // namespace
}  // namespace redcache
