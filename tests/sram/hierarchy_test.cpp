#include "sram/hierarchy.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

HierarchyConfig SmallHierarchy() {
  HierarchyConfig cfg;
  cfg.num_cores = 2;
  cfg.l1 = {.name = "l1", .size_bytes = 1_KiB, .ways = 2, .latency = 4};
  cfg.l2 = {.name = "l2", .size_bytes = 4_KiB, .ways = 4, .latency = 12};
  cfg.l3 = {.name = "l3", .size_bytes = 16_KiB, .ways = 8, .latency = 38};
  return cfg;
}

TEST(Hierarchy, ColdMissGoesToMemory) {
  CacheHierarchy h(SmallHierarchy());
  const auto r = h.Access(0, 0x10000, false);
  EXPECT_EQ(r.hit_level, 0u);
  EXPECT_EQ(r.latency, 4u + 12u + 38u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  CacheHierarchy h(SmallHierarchy());
  (void)h.Access(0, 0x10000, false);
  const auto r = h.Access(0, 0x10000, false);
  EXPECT_EQ(r.hit_level, 1u);
  EXPECT_EQ(r.latency, 4u);
}

TEST(Hierarchy, PrivateL1sAreIndependent) {
  CacheHierarchy h(SmallHierarchy());
  (void)h.Access(0, 0x10000, false);
  // Core 1 misses its own L1/L2 but finds the block in the shared L3.
  const auto r = h.Access(1, 0x10000, false);
  EXPECT_EQ(r.hit_level, 3u);
}

TEST(Hierarchy, EvictedL1BlockFoundInL2) {
  const HierarchyConfig cfg = SmallHierarchy();
  CacheHierarchy h(cfg);
  // Fill L1 set 0 beyond capacity (2 ways, 8 sets => stride 512).
  for (int i = 0; i < 3; ++i) {
    (void)h.Access(0, 0x10000 + i * 512, false);
  }
  // The first block fell out of L1; must hit in L2.
  const auto r = h.Access(0, 0x10000, false);
  EXPECT_EQ(r.hit_level, 2u);
}

TEST(Hierarchy, DirtyDataMigratesDownToL3Writeback) {
  CacheHierarchy h(SmallHierarchy());
  // Write a block, then flush it through all levels with conflicting reads.
  (void)h.Access(0, 0x0, true);
  std::vector<Addr> wbs;
  for (int i = 1; i < 200; ++i) {
    auto r = h.Access(0, static_cast<Addr>(i) * 512, false);
    wbs.insert(wbs.end(), r.writebacks.begin(), r.writebacks.end());
  }
  bool found = false;
  for (const Addr a : wbs) {
    if (a == 0) found = true;
  }
  EXPECT_TRUE(found) << "dirty block 0 never emerged as an L3 writeback";
}

TEST(Hierarchy, MissPathLatencySumsLevels) {
  CacheHierarchy h(SmallHierarchy());
  EXPECT_EQ(h.MissPathLatency(), 4u + 12u + 38u);
}

TEST(Hierarchy, WritebacksOnlyForDirtyData) {
  CacheHierarchy h(SmallHierarchy());
  std::size_t wb_count = 0;
  for (int i = 0; i < 400; ++i) {
    const auto r = h.Access(0, static_cast<Addr>(i) * 64, /*is_write=*/false);
    wb_count += r.writebacks.size();
  }
  EXPECT_EQ(wb_count, 0u);  // read-only stream never writes back
}

}  // namespace
}  // namespace redcache
