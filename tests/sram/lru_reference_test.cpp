// Property test: SramCache must agree with a trivially-correct reference
// LRU model across way counts and access streams.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>

#include "common/rng.hpp"
#include "sram/cache.hpp"

namespace redcache {
namespace {

/// Reference model: per-set std::list ordered most-recent-first.
class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t sets, std::uint32_t ways)
      : sets_(sets), ways_(ways), set_state_(sets) {}

  struct Result {
    bool hit;
    std::optional<Addr> dirty_victim;
  };

  Result Access(Addr addr, bool is_write) {
    const Addr tag = addr >> kBlockShift;
    auto& lru = set_state_[tag & (sets_ - 1)];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->tag == tag) {
        it->dirty |= is_write;
        lru.splice(lru.begin(), lru, it);
        return {true, std::nullopt};
      }
    }
    Result r{false, std::nullopt};
    if (lru.size() == ways_) {
      if (lru.back().dirty) {
        r.dirty_victim = lru.back().tag << kBlockShift;
      }
      lru.pop_back();
    }
    lru.push_front({tag, is_write});
    return r;
  }

 private:
  struct Line {
    Addr tag;
    bool dirty;
  };
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::vector<std::list<Line>> set_state_;
};

class LruEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LruEquivalence, MatchesReferenceModel) {
  const std::uint32_t ways = GetParam();
  SramCacheConfig cfg{.name = "t", .size_bytes = 16_KiB, .ways = ways,
                      .latency = 1};
  SramCache cache(cfg);
  ReferenceLru ref(cache.num_sets(), ways);
  Rng rng(ways * 1000003);

  for (int i = 0; i < 50000; ++i) {
    // Skewed addresses so sets see real contention.
    const Addr addr = (rng.Zipf(4096, 0.7)) * kBlockBytes;
    const bool write = rng.Chance(0.3);
    const auto got = cache.Access(addr, write);
    const auto want = ref.Access(addr, write);
    ASSERT_EQ(got.hit, want.hit) << "op " << i;
    ASSERT_EQ(got.dirty_victim.has_value(), want.dirty_victim.has_value())
        << "op " << i;
    if (got.dirty_victim) {
      ASSERT_EQ(*got.dirty_victim, *want.dirty_victim) << "op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, LruEquivalence,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "ways" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace redcache
