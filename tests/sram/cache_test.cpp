#include "sram/cache.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

SramCacheConfig TinyConfig() {
  return {.name = "t", .size_bytes = 4_KiB, .ways = 4, .latency = 1};
}

TEST(SramCache, MissThenHit) {
  SramCache c(TinyConfig());
  EXPECT_FALSE(c.Access(0x1000, false).hit);
  EXPECT_TRUE(c.Access(0x1000, false).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SramCache, ProbeDoesNotAllocate) {
  SramCache c(TinyConfig());
  EXPECT_FALSE(c.Probe(0x40));
  (void)c.Access(0x40, false);
  EXPECT_TRUE(c.Probe(0x40));
  EXPECT_EQ(c.hits(), 0u);  // probes don't count
}

TEST(SramCache, LruEvictsOldest) {
  SramCache c(TinyConfig());  // 16 sets, 4 ways
  const std::uint64_t sets = c.num_sets();
  // Five distinct tags to set 0: the first one must be evicted.
  for (std::uint64_t i = 0; i < 5; ++i) {
    (void)c.Access(i * sets * kBlockBytes, false);
  }
  EXPECT_FALSE(c.Probe(0));
  EXPECT_TRUE(c.Probe(4 * sets * kBlockBytes));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(SramCache, LruRefreshedByAccess) {
  SramCache c(TinyConfig());
  const std::uint64_t sets = c.num_sets();
  for (std::uint64_t i = 0; i < 4; ++i) {
    (void)c.Access(i * sets * kBlockBytes, false);
  }
  (void)c.Access(0, false);  // refresh tag 0
  (void)c.Access(4 * sets * kBlockBytes, false);  // evicts tag 1, not 0
  EXPECT_TRUE(c.Probe(0));
  EXPECT_FALSE(c.Probe(1 * sets * kBlockBytes));
}

TEST(SramCache, DirtyEvictionReportsVictim) {
  SramCache c(TinyConfig());
  const std::uint64_t sets = c.num_sets();
  (void)c.Access(0, /*is_write=*/true);
  for (std::uint64_t i = 1; i < 4; ++i) {
    (void)c.Access(i * sets * kBlockBytes, false);
  }
  const auto r = c.Access(4 * sets * kBlockBytes, false);
  ASSERT_TRUE(r.dirty_victim.has_value());
  EXPECT_EQ(*r.dirty_victim, 0u);
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(SramCache, CleanEvictionSilent) {
  SramCache c(TinyConfig());
  const std::uint64_t sets = c.num_sets();
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto r = c.Access(i * sets * kBlockBytes, false);
    EXPECT_FALSE(r.dirty_victim.has_value());
  }
}

TEST(SramCache, InsertMarksDirty) {
  SramCache c(TinyConfig());
  EXPECT_FALSE(c.Insert(0x80, /*dirty=*/true).has_value());
  EXPECT_TRUE(c.Probe(0x80));
  // Evict it cleanly through read allocations and catch the writeback.
  const std::uint64_t sets = c.num_sets();
  std::optional<Addr> wb;
  for (std::uint64_t i = 1; i <= 4 && !wb; ++i) {
    wb = c.Access(0x80 + i * sets * kBlockBytes, false).dirty_victim;
  }
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x80u);
}

TEST(SramCache, InvalidateReturnsDirtiness) {
  SramCache c(TinyConfig());
  (void)c.Access(0x100, true);
  (void)c.Access(0x200, false);
  EXPECT_TRUE(c.Invalidate(0x100));
  EXPECT_FALSE(c.Invalidate(0x200));
  EXPECT_FALSE(c.Invalidate(0x300));  // absent
  EXPECT_FALSE(c.Probe(0x100));
}

TEST(SramCache, WriteSetsDirtyOnHit) {
  SramCache c(TinyConfig());
  (void)c.Access(0x140, false);
  (void)c.Access(0x140, true);  // hit, dirties
  EXPECT_TRUE(c.Invalidate(0x140));
}

TEST(SramCache, SubBlockAddressesShareALine) {
  SramCache c(TinyConfig());
  (void)c.Access(0x1000, false);
  EXPECT_TRUE(c.Access(0x1030, false).hit);  // same 64 B block
}

}  // namespace
}  // namespace redcache
