#include "cpu/core.hpp"

#include <gtest/gtest.h>

#include "workloads/kernel_trace.hpp"

namespace redcache {
namespace {

/// Memory port that completes reads after a fixed latency.
class FakePort : public MemoryPort {
 public:
  explicit FakePort(Cycle latency = 100, bool accept = true)
      : latency_(latency), accept_(accept) {}

  bool TrySubmitRead(Addr addr, std::uint64_t tag, Cycle now) override {
    if (!accept_) return false;
    reads.push_back({addr, tag, now});
    pending.push_back({tag, now + latency_});
    return true;
  }
  void SubmitWriteback(Addr addr, Cycle /*now*/) override {
    writebacks.push_back(addr);
  }

  /// Deliver completions due at `now` to `core`.
  void Deliver(Core& core, Cycle now) {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].second <= now) {
        core.OnMemComplete(pending[i].first, now);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  struct Read {
    Addr addr;
    std::uint64_t tag;
    Cycle at;
  };
  std::vector<Read> reads;
  std::vector<Addr> writebacks;
  std::vector<std::pair<std::uint64_t, Cycle>> pending;
  Cycle latency_;
  bool accept_;
};

HierarchyConfig TinyHierarchy() {
  HierarchyConfig cfg;
  cfg.num_cores = 1;
  cfg.l1 = {.name = "l1", .size_bytes = 1_KiB, .ways = 2, .latency = 4};
  cfg.l2 = {.name = "l2", .size_bytes = 2_KiB, .ways = 4, .latency = 12};
  cfg.l3 = {.name = "l3", .size_bytes = 4_KiB, .ways = 8, .latency = 38};
  return cfg;
}

std::unique_ptr<KernelTrace> SweepTrace(std::uint64_t bytes,
                                        std::uint32_t passes,
                                        double wf = 0.0) {
  Kernel k;
  k.kind = Kernel::Kind::kSweep;
  k.base = 0;
  k.size = bytes;
  k.passes = passes;
  k.write_frac = wf;
  k.gap_mean = 2;
  return std::make_unique<KernelTrace>("sweep",
                                       std::vector<std::vector<Kernel>>{{k}},
                                       1);
}

/// Drive the core until finished; returns the finish time.
Cycle RunToCompletion(Core& core, FakePort& port, Cycle limit = 10000000) {
  Cycle now = 0;
  while (!core.Finished() && now < limit) {
    port.Deliver(core, now);
    const Cycle next = core.Progress(now);
    if (core.Finished()) break;
    if (next == Core::kWaiting) {
      // Jump to the earliest pending completion.
      Cycle soonest = limit;
      for (const auto& [tag, at] : port.pending) {
        soonest = std::min(soonest, at);
      }
      now = soonest;
    } else {
      now = std::max(now + 1, next);
    }
  }
  return now;
}

TEST(Core, ProcessesWholeTraceAndFinishes) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port;
  auto trace = SweepTrace(64 * 256, 1);
  Core core(0, CoreParams{}, trace.get(), &h, &port, 42);
  RunToCompletion(core, port);
  EXPECT_TRUE(core.Finished());
  EXPECT_EQ(core.refs_processed(), 256u);
  EXPECT_EQ(core.misses_issued(), port.reads.size());
  EXPECT_GT(core.misses_issued(), 0u);
}

TEST(Core, HitsStayOnDie) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port;
  // 1 KiB region fits in L1: one miss per block, rest hits.
  auto trace = SweepTrace(1_KiB, 10);
  Core core(0, CoreParams{}, trace.get(), &h, &port, 42);
  RunToCompletion(core, port);
  EXPECT_EQ(core.misses_issued(), 16u);
  EXPECT_EQ(core.l1_hits(), 9u * 16);
}

TEST(Core, OutstandingWindowBoundsMlp) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(100000);  // completions far in the future
  CoreParams params;
  params.max_outstanding = 4;
  params.dependent_fraction = 0.0;
  auto trace = SweepTrace(64 * 64, 1);
  Core core(0, params, trace.get(), &h, &port, 42);
  (void)core.Progress(1000000);
  EXPECT_EQ(port.reads.size(), 4u);  // window full, no more issues
  EXPECT_FALSE(core.Finished());
}

TEST(Core, CompletionOpensWindow) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(100000);
  CoreParams params;
  params.max_outstanding = 2;
  params.dependent_fraction = 0.0;
  auto trace = SweepTrace(64 * 16, 1);
  Core core(0, params, trace.get(), &h, &port, 42);
  (void)core.Progress(1000);
  ASSERT_EQ(port.reads.size(), 2u);
  core.OnMemComplete(port.reads[0].tag, 2000);
  (void)core.Progress(2000);
  EXPECT_EQ(port.reads.size(), 3u);
}

TEST(Core, BackpressureRetries) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(10, /*accept=*/false);
  auto trace = SweepTrace(64 * 8, 1);
  Core core(0, CoreParams{}, trace.get(), &h, &port, 42);
  const Cycle next = core.Progress(100);
  EXPECT_NE(next, Core::kWaiting);  // asks to retry
  EXPECT_GT(next, 100u);
  EXPECT_TRUE(port.reads.empty());
  port.accept_ = true;
  (void)core.Progress(next);
  EXPECT_GT(port.reads.size(), 0u);  // retry succeeded
}

TEST(Core, DependentMissStallsUntilData) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(500);
  CoreParams params;
  params.dependent_fraction = 1.0;  // every miss blocks
  auto trace = SweepTrace(64 * 4, 1);
  Core core(0, params, trace.get(), &h, &port, 42);
  // Give the core headroom past its first compute gap.
  EXPECT_EQ(core.Progress(1000), Core::kWaiting);
  EXPECT_EQ(port.reads.size(), 1u);
  // Without the completion, no further progress.
  EXPECT_EQ(core.Progress(10000), Core::kWaiting);
  EXPECT_EQ(port.reads.size(), 1u);
  core.OnMemComplete(port.reads[0].tag, 10500);
  (void)core.Progress(11000);
  EXPECT_GE(port.reads.size(), 2u);
}

TEST(Core, WritebacksForwardedToPort) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(50);
  // Write-heavy sweep larger than the hierarchy forces dirty evictions.
  auto trace = SweepTrace(64 * 1024, 2, /*wf=*/1.0);
  Core core(0, CoreParams{}, trace.get(), &h, &port, 42);
  RunToCompletion(core, port);
  EXPECT_GT(port.writebacks.size(), 100u);
}

TEST(Core, FinishTimeMonotoneWithLatency) {
  const auto run_with_latency = [](Cycle lat) {
    CacheHierarchy h(TinyHierarchy());
    FakePort port(lat);
    auto trace = SweepTrace(64 * 512, 1);
    CoreParams params;
    params.dependent_fraction = 0.5;
    Core core(0, params, trace.get(), &h, &port, 42);
    RunToCompletion(core, port);
    return core.finish_time();
  };
  EXPECT_LT(run_with_latency(50), run_with_latency(2000));
}

TEST(Core, TagsEncodeCoreId) {
  CacheHierarchy h(TinyHierarchy());
  FakePort port(100000);
  auto trace = SweepTrace(64 * 8, 1);
  Core core(5 % 1, CoreParams{}, trace.get(), &h, &port, 42);
  (void)core.Progress(1000);
  ASSERT_FALSE(port.reads.empty());
  EXPECT_EQ(port.reads[0].tag >> 48, 0u);
}

}  // namespace
}  // namespace redcache
