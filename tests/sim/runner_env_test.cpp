// EffectiveScale must survive whatever the environment throws at it:
// REDCACHE_REFS_SCALE is user input and a malformed value silently
// reverting to the configured scale beats aborting a bench sweep.
#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace redcache {
namespace {

/// Sets REDCACHE_REFS_SCALE for one test and restores the prior value.
class ScopedScaleEnv {
 public:
  explicit ScopedScaleEnv(const char* value) {
    if (const char* old = std::getenv(kVar)) {
      saved_ = old;
      had_ = true;
    }
    if (value == nullptr) {
      ::unsetenv(kVar);
    } else {
      ::setenv(kVar, value, /*overwrite=*/1);
    }
  }
  ~ScopedScaleEnv() {
    if (had_) {
      ::setenv(kVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "REDCACHE_REFS_SCALE";
  std::string saved_;
  bool had_ = false;
};

TEST(EffectiveScale, UnsetKeepsConfiguredScale) {
  ScopedScaleEnv env(nullptr);
  EXPECT_DOUBLE_EQ(EffectiveScale(0.25), 0.25);
  EXPECT_DOUBLE_EQ(EffectiveScale(1.0), 1.0);
}

TEST(EffectiveScale, ValidValueMultiplies) {
  ScopedScaleEnv env("0.5");
  EXPECT_DOUBLE_EQ(EffectiveScale(0.4), 0.2);
}

TEST(EffectiveScale, MalformedValueFallsBack) {
  ScopedScaleEnv env("banana");
  EXPECT_DOUBLE_EQ(EffectiveScale(0.75), 0.75);
}

TEST(EffectiveScale, NegativeValueFallsBack) {
  ScopedScaleEnv env("-2");
  EXPECT_DOUBLE_EQ(EffectiveScale(0.75), 0.75);
}

TEST(EffectiveScale, ZeroValueFallsBack) {
  ScopedScaleEnv env("0");
  EXPECT_DOUBLE_EQ(EffectiveScale(0.75), 0.75);
}

TEST(EffectiveScale, EmptyValueFallsBack) {
  ScopedScaleEnv env("");
  EXPECT_DOUBLE_EQ(EffectiveScale(0.75), 0.75);
}

TEST(EffectiveScale, LeadingNumberWithTrailingGarbageParses) {
  // atof semantics: the numeric prefix wins. Document it so a change in
  // parsing strategy shows up here.
  ScopedScaleEnv env("0.5x");
  EXPECT_DOUBLE_EQ(EffectiveScale(1.0), 0.5);
}

}  // namespace
}  // namespace redcache
