// Headline-shape regression tests: the qualitative results the paper
// reports must survive refactoring. Moderate scale keeps each simulation
// in the seconds range; margins are generous because these guard the
// *direction* of every effect, not its exact size.
#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace redcache {
namespace {

RunResult RunSim(Arch arch, const std::string& wl, double scale = 0.5) {
  RunSpec spec;
  spec.arch = arch;
  spec.workload = wl;
  spec.scale = scale;
  return RunOne(spec);
}

double HitRate(const RunResult& r) {
  const auto h = r.stats.GetCounter("ctrl.cache_hits");
  const auto m = r.stats.GetCounter("ctrl.cache_misses");
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

TEST(Shape, RedCacheBeatsAlloyOnHotColdContention) {
  const RunResult alloy = RunSim(Arch::kAlloy, "FT");
  const RunResult red = RunSim(Arch::kRedCache, "FT");
  EXPECT_LT(red.exec_cycles, alloy.exec_cycles);
  EXPECT_GT(HitRate(red), HitRate(alloy));
}

TEST(Shape, RedCacheSavesHbmEnergyEverywhereItRuns) {
  for (const char* wl : {"FT", "RDX", "HIST"}) {
    const RunResult alloy = RunSim(Arch::kAlloy, wl);
    const RunResult red = RunSim(Arch::kRedCache, wl);
    EXPECT_LT(red.energy.HbmCacheNj(), alloy.energy.HbmCacheNj()) << wl;
  }
}

TEST(Shape, RedCacheTracksInSituClosely) {
  // Paper: the RCU gets RedCache to ~98% of the in-situ ideal.
  const RunResult red = RunSim(Arch::kRedCache, "LU");
  const RunResult insitu = RunSim(Arch::kRedInSitu, "LU");
  const double ratio = static_cast<double>(insitu.exec_cycles) /
                       static_cast<double>(red.exec_cycles);
  EXPECT_GT(ratio, 0.93);
}

TEST(Shape, IdealBoundsEveryRealCache) {
  const RunResult ideal = RunSim(Arch::kIdeal, "RDX");
  for (const Arch a : {Arch::kAlloy, Arch::kBear, Arch::kRedCache}) {
    const RunResult r= RunSim(a, "RDX");
    EXPECT_GT(r.exec_cycles, ideal.exec_cycles) << ToString(a);
  }
}

TEST(Shape, AlphaMovesColdTrafficOffTheCache) {
  const RunResult alloy = RunSim(Arch::kAlloy, "HIST");
  const RunResult red = RunSim(Arch::kRedCache, "HIST");
  // The cold-dominant workload: RedCache's HBM traffic collapses.
  EXPECT_LT(2 * red.HbmBytes(), alloy.HbmBytes());
}

TEST(Shape, AlphaOnlyCarriesMostOfTheGain) {
  // Paper: alpha contributes more than gamma.
  const RunResult alloy = RunSim(Arch::kAlloy, "OCN");
  const RunResult alpha = RunSim(Arch::kRedAlpha, "OCN");
  const RunResult gamma = RunSim(Arch::kRedGamma, "OCN");
  const double alpha_gain = 1.0 - static_cast<double>(alpha.exec_cycles) /
                                      static_cast<double>(alloy.exec_cycles);
  const double gamma_gain = 1.0 - static_cast<double>(gamma.exec_cycles) /
                                      static_cast<double>(alloy.exec_cycles);
  EXPECT_GT(alpha_gain, gamma_gain);
  EXPECT_GT(alpha_gain, 0.05);
}

}  // namespace
}  // namespace redcache
