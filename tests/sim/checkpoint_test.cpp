// Checkpoint/restore differential: snapshotting a run at an arbitrary
// cycle and restoring it in a fresh System must be invisible — the resumed
// run's final StatSet and exec_cycles are byte-identical to an undisturbed
// run. Parameterized over EVERY registered policy (the serialization
// contract is part of the policy plugin obligations) plus a two-tenant mix
// cell; a "fuzzer-chosen" checkpoint cycle is derived per policy from the
// baseline run length so different policies snapshot at different phases.
#include "sim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dramcache/policy_registry.hpp"
#include "obs/json.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace redcache {
namespace {

RunSpec TinySpec(const std::string& policy, const std::string& wl = "LREG") {
  RunSpec spec;
  spec.policy = policy;
  spec.workload = wl;
  spec.scale = 0.02;
  spec.ignore_env_scale = true;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

/// Byte-exact StatSet equality via the serializer itself.
std::vector<std::uint8_t> Bytes(const StatSet& stats) {
  ser::Writer w;
  stats.Snapshot(w);
  return w.buffer();
}

/// Deterministic per-policy "fuzz" cycle inside (0, 2/3 * exec_cycles].
/// exec_cycles includes core finish-time tails past the event loop's last
/// visited cycle, so a checkpoint scheduled in the very tail of the run may
/// legitimately never fire; staying under 2/3 keeps the hook reachable.
Cycle FuzzCycle(const std::string& policy, Cycle exec_cycles) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : policy) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return 1 + h % std::max<Cycle>((2 * exec_cycles) / 3, 1);
}

/// Run with a one-shot checkpoint at `at`, returning the blob; then
/// restore into a fresh System, run to completion, and require final
/// stats + exec_cycles byte-identical to `baseline`.
void CheckRoundTrip(const RunSpec& spec, Cycle at,
                    const RunResult& baseline) {
  const std::string key = ckpt::SpecKeyOf(spec);
  std::string blob;
  {
    auto sys = BuildSystem(spec);
    System* raw = sys.get();
    sys->SetCheckpointHook(at, /*every=*/0, [raw, &blob, &key](Cycle now) {
      blob = ckpt::Capture(*raw, now, key);
    });
    const RunResult with_ckpt = sys->Run(spec.max_cycles);
    // Taking a checkpoint must not perturb the run it was taken from.
    ASSERT_TRUE(with_ckpt.completed);
    EXPECT_EQ(with_ckpt.exec_cycles, baseline.exec_cycles);
    EXPECT_EQ(Bytes(with_ckpt.stats), Bytes(baseline.stats));
  }
  ASSERT_FALSE(blob.empty()) << "checkpoint hook never fired";

  auto fresh = BuildSystem(spec);
  const ckpt::CheckpointMeta meta = ckpt::RestoreInto(*fresh, blob, key);
  EXPECT_GE(meta.cycle, at);
  const RunResult resumed = fresh->Run(spec.max_cycles);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.exec_cycles, baseline.exec_cycles)
      << "restored run diverged (checkpoint at cycle " << meta.cycle << ")";
  EXPECT_EQ(Bytes(resumed.stats), Bytes(baseline.stats))
      << "restored run's final stats differ (checkpoint at cycle "
      << meta.cycle << ")";
}

TEST(CheckpointDifferential, EveryRegisteredPolicyRoundTrips) {
  for (const std::string& policy : PolicyRegistry::Instance().Names()) {
    SCOPED_TRACE("policy=" + policy);
    const RunSpec spec = TinySpec(policy);
    const RunResult baseline = RunOne(spec);
    ASSERT_TRUE(baseline.completed);
    ASSERT_GT(baseline.exec_cycles, 2u);
    CheckRoundTrip(spec, FuzzCycle(policy, baseline.exec_cycles), baseline);
  }
}

TEST(CheckpointDifferential, RedCacheAtSeveralPhases) {
  const RunSpec spec = TinySpec("RedCache", "RDX");
  const RunResult baseline = RunOne(spec);
  ASSERT_TRUE(baseline.completed);
  for (const Cycle at :
       {Cycle{1}, baseline.exec_cycles / 7, baseline.exec_cycles / 3,
        (2 * baseline.exec_cycles) / 3}) {
    SCOPED_TRACE("checkpoint_at=" + std::to_string(at));
    CheckRoundTrip(spec, std::max<Cycle>(at, 1), baseline);
  }
}

TEST(CheckpointDifferential, TwoTenantMixRoundTrips) {
  RunSpec spec = TinySpec("RedCache");
  tenant::TenantSpec a, b;
  a.workload = "LREG";
  b.workload = "RDX";
  spec.mix.tenants = {a, b};
  const RunResult baseline = RunOne(spec);
  ASSERT_TRUE(baseline.completed);
  CheckRoundTrip(spec, baseline.exec_cycles / 3 + 1, baseline);
}

TEST(Checkpoint, BlobHeaderRoundTrips) {
  const RunSpec spec = TinySpec("Alloy");
  auto sys = BuildSystem(spec);
  const std::string key = ckpt::SpecKeyOf(spec);
  const std::string blob = ckpt::Capture(*sys, 0, key);
  const ckpt::CheckpointMeta meta = ckpt::PeekMeta(blob);
  EXPECT_EQ(meta.version, ckpt::kCheckpointVersion);
  EXPECT_EQ(meta.spec_key, key);
  EXPECT_EQ(meta.cycle, 0u);
}

TEST(Checkpoint, SpecKeyMismatchRejected) {
  const RunSpec spec = TinySpec("Alloy");
  auto sys = BuildSystem(spec);
  const std::string blob = ckpt::Capture(*sys, 0, ckpt::SpecKeyOf(spec));

  RunSpec other = spec;
  other.seed = 99;  // different spec => different key
  auto target = BuildSystem(other);
  EXPECT_THROW(ckpt::RestoreInto(*target, blob, ckpt::SpecKeyOf(other)),
               ser::SerializeError);
}

TEST(Checkpoint, CorruptBlobRejected) {
  const RunSpec spec = TinySpec("Alloy");
  auto sys = BuildSystem(spec);
  const std::string key = ckpt::SpecKeyOf(spec);
  std::string blob = ckpt::Capture(*sys, 0, key);

  auto fresh = BuildSystem(spec);
  std::string truncated = blob.substr(0, blob.size() / 2);
  EXPECT_THROW(ckpt::RestoreInto(*fresh, truncated, key),
               ser::SerializeError);

  std::string flipped = blob;
  flipped[flipped.size() / 2] ^= 0x5a;
  auto fresh2 = BuildSystem(spec);
  EXPECT_THROW(ckpt::RestoreInto(*fresh2, flipped, key),
               ser::SerializeError);

  std::string not_a_ckpt = "definitely not a checkpoint";
  auto fresh3 = BuildSystem(spec);
  EXPECT_THROW(ckpt::RestoreInto(*fresh3, not_a_ckpt, key),
               ser::SerializeError);
}

TEST(CheckpointTelemetry, RestoredRunTelescopesWithBaseline) {
  // Satellite: restoring with DIFFERENT telemetry epoch settings must not
  // corrupt the epoch telescoping invariant. The resumed run's NDJSON
  // header carries restored_at plus the pre-restore cumulative counters as
  // a baseline, the first epoch begins exactly at restored_at, and
  // sum(epoch deltas) + baseline == the end record's totals.
  char tmpl[] = "/tmp/redcache_ckpt_telem_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string ckpt_path = dir + "/mid.ckpt";
  const std::string ndjson_path = dir + "/resumed.ndjson";

  const RunSpec plain = TinySpec("RedCache", "RDX");
  const RunResult baseline = RunOne(plain);
  ASSERT_TRUE(baseline.completed);

  RunSpec capture = plain;
  capture.checkpoint_path = ckpt_path;
  capture.checkpoint_at = baseline.exec_cycles / 3;
  ASSERT_TRUE(RunOne(capture).completed);

  RunSpec resume = plain;
  resume.restore_path = ckpt_path;
  resume.telemetry_path = ndjson_path;
  // A deliberately odd epoch width, unlike anything the capture run or the
  // preset default would have used.
  resume.epoch.cycles = 7777;
  const RunResult resumed = RunOne(resume);
  ASSERT_TRUE(resumed.completed);
  // Telemetry attach + restore stay invisible to the results.
  EXPECT_EQ(resumed.exec_cycles, baseline.exec_cycles);
  EXPECT_EQ(Bytes(resumed.stats), Bytes(baseline.stats));

  std::ifstream in(ndjson_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t restored_at = 0;
  std::uint64_t baseline_refs = 0;
  std::int64_t delta_refs_sum = 0;
  std::uint64_t total_refs = 0;
  bool saw_header = false, saw_first_epoch = false, saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::ParseJson(line, doc, &err)) << err << "\n" << line;
    const std::string type = doc.Find("type")->string;
    if (type == "header") {
      saw_header = true;
      ASSERT_NE(doc.Find("restored_at"), nullptr)
          << "restored run's header must carry restored_at";
      restored_at = static_cast<std::uint64_t>(doc.Find("restored_at")->number);
      const obs::JsonValue* base = doc.Find("baseline");
      ASSERT_NE(base, nullptr);
      const obs::JsonValue* refs = base->Find("core.refs");
      ASSERT_NE(refs, nullptr) << "baseline must carry the core counters";
      baseline_refs = static_cast<std::uint64_t>(refs->number);
      EXPECT_GT(baseline_refs, 0u)
          << "a mid-run checkpoint has non-zero progress";
    } else if (type == "epoch") {
      if (!saw_first_epoch) {
        saw_first_epoch = true;
        EXPECT_EQ(static_cast<std::uint64_t>(doc.Find("begin")->number),
                  restored_at)
            << "first epoch must begin exactly where the restore resumed";
      }
      const obs::JsonValue* refs = doc.Find("delta")->Find("core.refs");
      if (refs != nullptr) {
        delta_refs_sum += static_cast<std::int64_t>(refs->number);
      }
    } else if (type == "end") {
      saw_end = true;
      total_refs = static_cast<std::uint64_t>(
          doc.Find("totals")->Find("core.refs")->number);
    }
  }
  ASSERT_TRUE(saw_header);
  ASSERT_TRUE(saw_first_epoch) << "resumed run produced no epochs";
  ASSERT_TRUE(saw_end);
  EXPECT_EQ(baseline_refs + static_cast<std::uint64_t>(delta_refs_sum),
            total_refs)
      << "epoch telescoping with baseline must cover the full run";
  EXPECT_EQ(total_refs, baseline.stats.GetCounter("core.refs"));

  std::remove(ckpt_path.c_str());
  std::remove(ndjson_path.c_str());
  ::rmdir(dir.c_str());
}

TEST(Checkpoint, VerifyDecoratorFailsLoudly) {
  // The ShadowChecker decorator inherits the throwing MemController
  // defaults: checkpointing a --verify run must fail with a clear error,
  // never silently skip the checker's state.
  RunSpec spec = TinySpec("Alloy");
  spec.verify = true;
  auto sys = BuildSystem(spec);
  ser::Writer w;
  EXPECT_THROW(sys->Snapshot(w, 0), ser::SerializeError);
}

}  // namespace
}  // namespace redcache
