#include "sim/presets.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(Presets, PaperPresetMatchesTableOne) {
  const SimPreset p = PaperPreset();
  EXPECT_EQ(p.hierarchy.num_cores, 16u);
  EXPECT_EQ(p.hierarchy.l1.size_bytes, 64_KiB);
  EXPECT_EQ(p.hierarchy.l2.size_bytes, 128_KiB);
  EXPECT_EQ(p.hierarchy.l3.size_bytes, 8_MiB);
  EXPECT_EQ(p.mem.hbm.geometry.capacity_bytes, 2_GiB);
  EXPECT_EQ(p.mem.mainmem.geometry.capacity_bytes, 32_GiB);
}

TEST(Presets, EvalPresetPreservesRegime) {
  const SimPreset p = EvalPreset();
  // Scaled but ordered: L3 < HBM cache < main memory.
  EXPECT_LT(p.hierarchy.l3.size_bytes, p.mem.hbm.geometry.capacity_bytes);
  EXPECT_LT(p.mem.hbm.geometry.capacity_bytes,
            p.mem.mainmem.geometry.capacity_bytes);
}

TEST(Presets, TimingIdenticalAcrossPresets) {
  const SimPreset eval = EvalPreset();
  const SimPreset paper = PaperPreset();
  EXPECT_EQ(eval.mem.hbm.timing.tCAS, paper.mem.hbm.timing.tCAS);
  EXPECT_EQ(eval.mem.hbm.timing.tCCD, paper.mem.hbm.timing.tCCD);
  EXPECT_EQ(eval.mem.mainmem.timing.tCCD, paper.mem.mainmem.timing.tCCD);
}

TEST(Presets, HbmHasMoreChannelsAndWiderBus) {
  const SimPreset p = EvalPreset();
  EXPECT_GT(p.mem.hbm.geometry.channels, p.mem.mainmem.geometry.channels);
  EXPECT_GT(p.mem.hbm.geometry.bus_bits, p.mem.mainmem.geometry.bus_bits);
}

}  // namespace
}  // namespace redcache
