// Cross-architecture invariants: for every controller, on several
// workloads, a run must complete, answer every demand read exactly once,
// keep its internal accounting consistent, and stay deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/runner.hpp"

namespace redcache {
namespace {

using Param = std::tuple<Arch, std::string>;

class ArchInvariants : public ::testing::TestWithParam<Param> {};

RunSpec SmallSpec(Arch arch, const std::string& wl) {
  RunSpec spec;
  spec.arch = arch;
  spec.workload = wl;
  spec.scale = 0.05;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

TEST_P(ArchInvariants, CompletesAndConserves) {
  const auto [arch, wl] = GetParam();
  const RunResult r = RunOne(SmallSpec(arch, wl));
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.exec_cycles, 0u);

  // Every L3 miss became exactly one controller read.
  EXPECT_EQ(r.stats.GetCounter("core.misses"), r.stats.GetCounter("ctrl.reads"));

  // Refs were fully consumed and the hit counters partition them.
  const auto refs = r.stats.GetCounter("core.refs");
  EXPECT_EQ(refs, r.stats.GetCounter("core.l1_hits") +
                      r.stats.GetCounter("core.l2_hits") +
                      r.stats.GetCounter("core.l3_hits") +
                      r.stats.GetCounter("core.misses"));

  // Off-chip devices only move whole bursts.
  if (arch != Arch::kIdeal) {
    EXPECT_GT(r.stats.GetCounter("ddr4.transactions"), 0u) << "below-L3 "
        "traffic must reach main memory for non-ideal systems";
  }
  EXPECT_GT(r.energy.SystemNj(), 0.0);
}

TEST_P(ArchInvariants, Deterministic) {
  const auto [arch, wl] = GetParam();
  const RunResult a = RunOne(SmallSpec(arch, wl));
  const RunResult b = RunOne(SmallSpec(arch, wl));
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.stats.GetCounter("hbm.bytes_transferred"),
            b.stats.GetCounter("hbm.bytes_transferred"));
  EXPECT_EQ(a.stats.GetCounter("ddr4.bytes_transferred"),
            b.stats.GetCounter("ddr4.bytes_transferred"));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ArchInvariants,
    ::testing::Combine(::testing::Values(Arch::kNoHbm, Arch::kIdeal,
                                         Arch::kAlloy, Arch::kBear,
                                         Arch::kRedAlpha, Arch::kRedGamma,
                                         Arch::kRedBasic, Arch::kRedInSitu,
                                         Arch::kRedCache),
                       ::testing::Values(std::string("LREG"),
                                         std::string("RDX"),
                                         std::string("BRN"))),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::string(ToString(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace redcache
