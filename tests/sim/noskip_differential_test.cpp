// Skip-ahead vs single-cycle stepping differential.
//
// REDCACHE_NO_SKIP=1 forces System::Run to advance time one cycle per
// visit instead of jumping to the next wake. If every component's wake is
// conservative (DESIGN.md section 10), the two pacing modes visit the same
// state-changing cycles and must produce byte-identical statistics — on
// every Table II workload, for a representative controller of each family.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <tuple>

#include "sim/runner.hpp"
#include "workloads/benchmarks.hpp"

namespace redcache {
namespace {

class ScopedNoSkip {
 public:
  ScopedNoSkip() { ::setenv("REDCACHE_NO_SKIP", "1", /*overwrite=*/1); }
  ~ScopedNoSkip() { ::unsetenv("REDCACHE_NO_SKIP"); }
};

using Param = std::tuple<std::string, std::string>;

class NoSkipDifferential : public ::testing::TestWithParam<Param> {};

RunSpec Spec(const std::string& policy, const std::string& wl) {
  RunSpec spec;
  spec.policy = policy;
  spec.workload = wl;
  spec.scale = 0.02;
  spec.ignore_env_scale = true;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

TEST_P(NoSkipDifferential, IdenticalStats) {
  const auto [policy, wl] = GetParam();

  const RunResult skip = RunOne(Spec(policy, wl));
  ASSERT_TRUE(skip.completed);

  RunResult step;
  {
    ScopedNoSkip no_skip;
    step = RunOne(Spec(policy, wl));
  }
  ASSERT_TRUE(step.completed);

  EXPECT_EQ(skip.exec_cycles, step.exec_cycles);
  EXPECT_EQ(skip.stats.counters(), step.stats.counters());

  // The loop economics differ but must cover the same span: stepping
  // executes every cycle, skip-ahead trades executed ticks for skipped
  // cycles one-for-one.
  EXPECT_EQ(step.cycles_skipped, 0u);
  EXPECT_GT(skip.cycles_skipped, 0u);
  EXPECT_EQ(skip.ticks_executed + skip.cycles_skipped,
            step.ticks_executed + step.cycles_skipped);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, NoSkipDifferential,
    ::testing::Combine(::testing::Values("Alloy", "Bear", "RedCache",
                                         "Banshee", "TicToc"),
                       ::testing::ValuesIn(WorkloadLabels())),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace redcache
