// Skip-ahead vs single-cycle stepping differential.
//
// REDCACHE_NO_SKIP=1 forces System::Run to advance time one cycle per
// visit instead of jumping to the next wake. If every component's wake is
// conservative (DESIGN.md section 10), the two pacing modes visit the same
// state-changing cycles and must produce byte-identical statistics — on
// every Table II workload, for a representative controller of each family.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "sim/runner.hpp"
#include "workloads/benchmarks.hpp"

namespace redcache {
namespace {

class ScopedNoSkip {
 public:
  ScopedNoSkip() { ::setenv("REDCACHE_NO_SKIP", "1", /*overwrite=*/1); }
  ~ScopedNoSkip() { ::unsetenv("REDCACHE_NO_SKIP"); }
};

using Param = std::tuple<std::string, std::string>;

class NoSkipDifferential : public ::testing::TestWithParam<Param> {};

// Recorded skip-ahead economics: cycles_skipped per differential cell as
// measured before the SoA timing-core refactor (PR 7). The refactor tightened
// NextEventHint, so skipping must never get *worse* than these floors —
// a decrease means a wake hint regressed to "poll every slot" somewhere.
// Regenerate (intentional pacing changes only) with
//   REDCACHE_UPDATE_SKIP_BASELINE=1 ./build/tests/sim/sim_tests
//     --gtest_filter='SkipBaseline.Regenerate'
std::string SkipBaselinePath() { return REDCACHE_SKIP_BASELINE_FILE; }

const std::vector<std::string>& BaselinePolicies() {
  static const std::vector<std::string> kPolicies = {"Alloy", "Bear",
                                                     "RedCache"};
  return kPolicies;
}

std::map<std::string, std::uint64_t> LoadSkipBaseline() {
  std::map<std::string, std::uint64_t> table;
  std::ifstream in(SkipBaselinePath());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    std::uint64_t skipped = 0;
    if (fields >> key >> skipped) table[key] = skipped;
  }
  return table;
}

RunSpec Spec(const std::string& policy, const std::string& wl) {
  RunSpec spec;
  spec.policy = policy;
  spec.workload = wl;
  spec.scale = 0.02;
  spec.ignore_env_scale = true;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

TEST_P(NoSkipDifferential, IdenticalStats) {
  const auto [policy, wl] = GetParam();

  const RunResult skip = RunOne(Spec(policy, wl));
  ASSERT_TRUE(skip.completed);

  RunResult step;
  {
    ScopedNoSkip no_skip;
    step = RunOne(Spec(policy, wl));
  }
  ASSERT_TRUE(step.completed);

  EXPECT_EQ(skip.exec_cycles, step.exec_cycles);
  EXPECT_EQ(skip.stats.counters(), step.stats.counters());

  // The loop economics differ but must cover the same span: stepping
  // executes every cycle, skip-ahead trades executed ticks for skipped
  // cycles one-for-one.
  EXPECT_EQ(step.cycles_skipped, 0u);
  EXPECT_GT(skip.cycles_skipped, 0u);
  EXPECT_EQ(skip.ticks_executed + skip.cycles_skipped,
            step.ticks_executed + step.cycles_skipped);

  // Skip-economics floor: at least as many cycles skipped as the recorded
  // pre-refactor baseline for this cell (see SkipBaselinePath above).
  static const auto baseline = LoadSkipBaseline();
  const auto it = baseline.find(policy + "/" + wl);
  if (it != baseline.end()) {
    EXPECT_GE(skip.cycles_skipped, it->second)
        << "wake hints got less exact: " << policy << "/" << wl
        << " skipped fewer cycles than the recorded baseline";
  }
}

/// Regenerates the cycles_skipped floor file; only runs when
/// REDCACHE_UPDATE_SKIP_BASELINE is set.
TEST(SkipBaseline, Regenerate) {
  const char* env = std::getenv("REDCACHE_UPDATE_SKIP_BASELINE");
  if (env == nullptr || env[0] == '\0' || std::string(env) == "0") {
    GTEST_SKIP() << "set REDCACHE_UPDATE_SKIP_BASELINE=1 to regenerate "
                 << SkipBaselinePath();
  }
  std::ofstream out(SkipBaselinePath());
  ASSERT_TRUE(out.good());
  out << "# cycles_skipped floor per skip/no-skip differential cell\n"
      << "# (policy/workload  cycles_skipped), spec: scale=0.02 eval preset\n"
      << "# 4 cores. Regenerate: REDCACHE_UPDATE_SKIP_BASELINE=1 sim_tests\n"
      << "#   --gtest_filter='SkipBaseline.Regenerate'\n";
  for (const std::string& policy : BaselinePolicies()) {
    for (const std::string& wl : WorkloadLabels()) {
      const RunResult skip = RunOne(Spec(policy, wl));
      ASSERT_TRUE(skip.completed) << policy << "/" << wl;
      out << policy << "/" << wl << " " << skip.cycles_skipped << "\n";
    }
  }
  std::printf("wrote %zu cells to %s\n",
              BaselinePolicies().size() * WorkloadLabels().size(),
              SkipBaselinePath().c_str());
}

INSTANTIATE_TEST_SUITE_P(
    TableII, NoSkipDifferential,
    ::testing::Combine(::testing::Values("Alloy", "Bear", "RedCache",
                                         "Banshee", "TicToc"),
                       ::testing::ValuesIn(WorkloadLabels())),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace redcache
