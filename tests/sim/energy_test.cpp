#include "energy/model.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(Energy, ZeroStatsZeroDynamicEnergy) {
  EnergyModel m;
  StatSet s;
  const EnergyBreakdown e = m.Compute(s, 0, 16, 4, 2);
  EXPECT_DOUBLE_EQ(e.hbm_dynamic_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.mainmem_dynamic_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.SystemNj(), 0.0);
}

TEST(Energy, DynamicEnergyScalesWithBursts) {
  EnergyModel m;
  StatSet s;
  s.Counter("hbm.read_bursts") = 1000;
  const double e1 = m.Compute(s, 0, 16, 4, 2).hbm_dynamic_nj;
  s.Counter("hbm.read_bursts") = 2000;
  const double e2 = m.Compute(s, 0, 16, 4, 2).hbm_dynamic_nj;
  EXPECT_DOUBLE_EQ(e2, 2 * e1);
  EXPECT_GT(e1, 0.0);
}

TEST(Energy, BackgroundScalesWithTime) {
  EnergyModel m;
  StatSet s;
  const double e1 = m.Compute(s, 1000000, 16, 4, 2).hbm_background_nj;
  const double e2 = m.Compute(s, 2000000, 16, 4, 2).hbm_background_nj;
  EXPECT_NEAR(e2, 2 * e1, 1e-9);
}

TEST(Energy, OffChipBurstCostsMoreThanHbm) {
  // The premise of in-package caching: HBM bits are cheaper to move.
  EXPECT_LT(HbmEnergyParams().read_burst_nj, Ddr4EnergyParams().read_burst_nj);
}

TEST(Energy, HbmCacheMetricExcludesMainMemory) {
  EnergyModel m;
  StatSet s;
  s.Counter("ddr4.read_bursts") = 100000;
  const EnergyBreakdown e = m.Compute(s, 0, 16, 4, 2);
  EXPECT_DOUBLE_EQ(e.HbmCacheNj(), 0.0);
  EXPECT_GT(e.SystemNj(), 0.0);
}

TEST(Energy, ControllerStructuresCharged) {
  EnergyModel m;
  StatSet s;
  s.Counter("ctrl.alpha_lookups") = 1000;
  s.Counter("ctrl.rcu_searches") = 500;
  const EnergyBreakdown e = m.Compute(s, 0, 16, 4, 2);
  EXPECT_GT(e.controller_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.controller_nj,
                   1000 * m.soc().alpha_buffer_nj + 500 * m.soc().rcu_cam_nj);
}

TEST(Energy, CpuEnergyHasStaticAndDynamicParts) {
  EnergyModel m;
  StatSet s;
  s.Counter("core.refs") = 1000;
  const double dynamic_only = m.Compute(s, 0, 16, 4, 2).cpu_nj;
  const double with_time = m.Compute(s, 3200000, 16, 4, 2).cpu_nj;
  EXPECT_GT(dynamic_only, 0.0);
  EXPECT_GT(with_time, dynamic_only);
}

}  // namespace
}  // namespace redcache
