#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace redcache {
namespace {

RunSpec TinySpec(Arch arch, const std::string& wl = "LREG") {
  RunSpec spec;
  spec.arch = arch;
  spec.workload = wl;
  spec.scale = 0.02;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

TEST(System, RunsToCompletion) {
  const RunResult r = RunOne(TinySpec(Arch::kAlloy));
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.exec_cycles, 0u);
  EXPECT_GT(r.stats.GetCounter("core.refs"), 0u);
}

TEST(System, EveryArchCompletesEveryTinyWorkload) {
  for (Arch a : {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
                 Arch::kRedCache}) {
    for (const std::string wl : {"LREG", "HIST", "RDX"}) {
      const RunResult r = RunOne(TinySpec(a, wl));
      EXPECT_TRUE(r.completed) << ToString(a) << "/" << wl;
      EXPECT_GT(r.exec_cycles, 0u);
    }
  }
}

TEST(System, DeterministicExecution) {
  const RunResult a = RunOne(TinySpec(Arch::kRedCache));
  const RunResult b = RunOne(TinySpec(Arch::kRedCache));
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.stats.GetCounter("hbm.bytes_transferred"),
            b.stats.GetCounter("hbm.bytes_transferred"));
}

TEST(System, MemoryTrafficConservation) {
  const RunResult r = RunOne(TinySpec(Arch::kAlloy));
  // Every below-L3 read the cores issued must be answered.
  EXPECT_EQ(r.stats.GetCounter("core.misses"),
            r.stats.GetCounter("ctrl.reads"));
  // Hits+misses equals probed requests.
  EXPECT_EQ(r.stats.GetCounter("ctrl.cache_hits") +
                r.stats.GetCounter("ctrl.cache_misses"),
            r.stats.GetCounter("ctrl.reads") +
                r.stats.GetCounter("ctrl.writebacks"));
}

TEST(System, IdealFasterThanNoHbm) {
  const RunResult ideal = RunOne(TinySpec(Arch::kIdeal, "OCN"));
  const RunResult nohbm = RunOne(TinySpec(Arch::kNoHbm, "OCN"));
  EXPECT_LT(ideal.exec_cycles, nohbm.exec_cycles);
}

TEST(System, EnergyPopulated) {
  const RunResult r = RunOne(TinySpec(Arch::kRedCache));
  EXPECT_GT(r.energy.SystemNj(), 0.0);
  EXPECT_GT(r.energy.HbmCacheNj(), 0.0);
  EXPECT_GT(r.energy.cpu_nj, 0.0);
}

TEST(System, RequestObserverSeesTraffic) {
  auto spec = TinySpec(Arch::kNoHbm);
  auto sys = BuildSystem(spec);
  std::uint64_t reads = 0, wbs = 0;
  sys->SetRequestObserver([&](Addr, bool is_wb) {
    if (is_wb) wbs++; else reads++;
  });
  const RunResult r = sys->Run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(reads, r.stats.GetCounter("core.misses"));
}

TEST(System, MaxCyclesBoundsRun) {
  auto spec = TinySpec(Arch::kAlloy);
  spec.max_cycles = 5000;
  const RunResult r = RunOne(spec);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.exec_cycles, 2 * 5000u);
}

TEST(System, ScaleEnvOverride) {
  EXPECT_DOUBLE_EQ(EffectiveScale(2.0), 2.0);
  setenv("REDCACHE_REFS_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(EffectiveScale(2.0), 1.0);
  unsetenv("REDCACHE_REFS_SCALE");
}

}  // namespace
}  // namespace redcache
