// Fresh-process checkpoint differential: the acceptance-critical variant
// of the round-trip tests runs the real CLI binary twice — one process
// writes the checkpoint, a second process restores it — and requires the
// full --stats dumps to be byte-identical. This proves the blob carries
// everything across a process boundary (no in-process state leaks into
// the result).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace redcache {
namespace {

#ifndef REDCACHE_CLI_PATH
#error "REDCACHE_CLI_PATH must point at the redcache_cli binary"
#endif

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCli(const std::string& args, const std::string& stdout_path) {
  const std::string cmd = std::string(REDCACHE_CLI_PATH) + " " + args + " > " +
                          stdout_path + " 2>&1";
  return std::system(cmd.c_str());
}

TEST(CliCheckpoint, FreshProcessRestoreIsByteIdentical) {
  char tmpl[] = "/tmp/redcache_cli_ckpt_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string blob = dir + "/mid.ckpt";
  const std::string out_a = dir + "/capture.txt";
  const std::string out_b = dir + "/restored.txt";
  const std::string common =
      "--policy RedCache --workload RDX --scale 0.02 --seed 7 --stats";

  ASSERT_EQ(RunCli(common + " --checkpoint " + blob + " --checkpoint-at "
                       "100000",
                   out_a),
            0)
      << ReadAll(out_a);
  {
    std::ifstream in(blob, std::ios::binary);
    ASSERT_TRUE(in.good()) << "checkpoint blob was not written";
  }

  ASSERT_EQ(RunCli(common + " --restore " + blob, out_b), 0)
      << ReadAll(out_b);

  const std::string a = ReadAll(out_a);
  const std::string b = ReadAll(out_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "restored process output diverged from the "
                     "checkpointing process";

  std::remove(blob.c_str());
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
  ::rmdir(dir.c_str());
}

TEST(CliCheckpoint, RestoreWithMismatchedSpecFails) {
  char tmpl[] = "/tmp/redcache_cli_ckptbad_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string blob = dir + "/mid.ckpt";
  const std::string out = dir + "/out.txt";

  ASSERT_EQ(RunCli("--policy RedCache --workload RDX --scale 0.02 --seed 7 "
                   "--checkpoint " +
                       blob + " --checkpoint-at 100000",
                   out),
            0)
      << ReadAll(out);
  // Different seed => different spec key: the restore must refuse.
  EXPECT_NE(RunCli("--policy RedCache --workload RDX --scale 0.02 --seed 8 "
                   "--restore " +
                       blob,
                   out),
            0);
  EXPECT_NE(ReadAll(out).find("different run configuration"),
            std::string::npos);

  std::remove(blob.c_str());
  std::remove(out.c_str());
  ::rmdir(dir.c_str());
}

TEST(CliCheckpoint, SampledRunReportsConfidenceInterval) {
  char tmpl[] = "/tmp/redcache_cli_sample_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string out = dir + "/out.txt";
  const std::string report = dir + "/report.json";

  ASSERT_EQ(RunCli("--policy RedCache --workload RDX --scale 0.02 "
                   "--sample 0.1:20000 --report " +
                       report,
                   out),
            0)
      << ReadAll(out);
  const std::string text = ReadAll(out);
  EXPECT_NE(text.find("sampled"), std::string::npos) << text;
  EXPECT_NE(text.find("95% CI"), std::string::npos) << text;
  const std::string rep = ReadAll(report);
  EXPECT_NE(rep.find("\"sampled\":true"), std::string::npos) << rep;
  EXPECT_NE(rep.find("\"sampling_ci_pct\""), std::string::npos) << rep;

  std::remove(out.c_str());
  std::remove(report.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace redcache
