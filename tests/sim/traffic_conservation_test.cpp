// End-to-end traffic-conservation checks: what the cores emit must equal
// what the devices serve, for representative architectures.
#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace redcache {
namespace {

RunResult RunSmall(Arch arch, const std::string& wl) {
  RunSpec spec;
  spec.arch = arch;
  spec.workload = wl;
  spec.scale = 0.05;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return RunOne(spec);
}

TEST(TrafficConservation, NoHbmWritesEqualL3Writebacks) {
  const RunResult r = RunSmall(Arch::kNoHbm, "OCN");
  EXPECT_EQ(r.stats.GetCounter("ddr4.write_bursts"),
            r.stats.GetCounter("ctrl.writebacks"));
  EXPECT_EQ(r.stats.GetCounter("ddr4.read_bursts"),
            r.stats.GetCounter("ctrl.reads"));
}

TEST(TrafficConservation, AlloyProbesEveryRequest) {
  const RunResult r = RunSmall(Arch::kAlloy, "RDX");
  // Every read and writeback starts with exactly one TAD probe; further
  // HBM reads only come from wide-line victim streaming (none at 64 B).
  const auto requests =
      r.stats.GetCounter("ctrl.reads") + r.stats.GetCounter("ctrl.writebacks");
  EXPECT_EQ(r.stats.GetCounter("hbm.read_bursts"), requests);
}

TEST(TrafficConservation, AlloyMainMemoryReadsAreReadMisses) {
  const RunResult r = RunSmall(Arch::kAlloy, "RDX");
  const auto read_misses = r.stats.GetCounter("ctrl.reads") -
                           r.stats.GetCounter("ctrl.read_hits");
  EXPECT_EQ(r.stats.GetCounter("ddr4.read_bursts"), read_misses);
}

TEST(TrafficConservation, AlloyVictimWritebacksMatchDdrWrites) {
  const RunResult r = RunSmall(Arch::kAlloy, "OCN");
  EXPECT_EQ(r.stats.GetCounter("ddr4.write_bursts"),
            r.stats.GetCounter("ctrl.victim_writebacks"));
}

TEST(TrafficConservation, RedCacheAccountsEveryRequestExactlyOnce) {
  const RunResult r = RunSmall(Arch::kRedCache, "RDX");
  const auto requests =
      r.stats.GetCounter("ctrl.reads") + r.stats.GetCounter("ctrl.writebacks");
  // Each request is either bypassed (alpha or refresh) or resolved as a
  // hit (including RCU-block-cache serves) or a miss.
  const auto routed = r.stats.GetCounter("ctrl.alpha_bypasses") +
                      r.stats.GetCounter("ctrl.refresh_bypasses") +
                      r.stats.GetCounter("ctrl.cache_hits") +
                      r.stats.GetCounter("ctrl.cache_misses");
  EXPECT_EQ(routed, requests);
}

TEST(TrafficConservation, IdealNeverTouchesMainMemory) {
  const RunResult r = RunSmall(Arch::kIdeal, "FT");
  EXPECT_EQ(r.stats.GetCounter("ddr4.transactions"), 0u);
  EXPECT_GT(r.stats.GetCounter("hbm.transactions"), 0u);
}

}  // namespace
}  // namespace redcache
