// Batch engine invariants: worker-count determinism, result ordering,
// cell keys, the fingerprinted disk cache, and ParallelFor coverage.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "obs/json.hpp"
#include "sim/runner.hpp"

namespace redcache {
namespace {

// Serialize everything a figure could print from a RunResult so "identical"
// means byte-identical output, not just matching headline cycles.
std::string Serialize(const RunResult& r) {
  std::ostringstream os;
  os << "completed=" << r.completed << "\nexec_cycles=" << r.exec_cycles
     << "\nhbm_energy=" << r.energy.HbmCacheNj()
     << "\nsystem_energy=" << r.energy.SystemNj() << "\n"
     << r.stats.ToString();
  return os.str();
}

std::vector<RunSpec> Matrix() {
  // 6 architectures x 3 workloads, tiny but nonzero runs.
  const Arch archs[] = {Arch::kNoHbm, Arch::kIdeal,    Arch::kAlloy,
                        Arch::kBear,  Arch::kRedAlpha, Arch::kRedCache};
  const char* wls[] = {"LU", "RDX", "HIST"};
  std::vector<RunSpec> specs;
  for (Arch a : archs) {
    for (const char* wl : wls) {
      RunSpec s;
      s.arch = a;
      s.workload = wl;
      s.scale = 0.02;
      s.ignore_env_scale = true;  // immune to REDCACHE_REFS_SCALE in CI
      s.seed = 11;
      specs.push_back(s);
    }
  }
  return specs;
}

TEST(Batch, DeterministicAcrossWorkerCounts) {
  const auto specs = Matrix();

  BatchOptions serial;
  serial.jobs = 1;
  serial.progress = false;
  const auto base = RunBatch(specs, serial);

  BatchOptions wide;
  wide.jobs = 8;
  wide.progress = false;
  const auto par = RunBatch(specs, wide);

  ASSERT_EQ(base.size(), specs.size());
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(Serialize(base[i]), Serialize(par[i]))
        << "cell " << i << " (" << ToString(specs[i].arch) << "/"
        << specs[i].workload << ") diverged between jobs=1 and jobs=8";
  }
}

TEST(Batch, RunCellsMatchesRunBatchAndSharesDuplicates) {
  // The same cell requested twice must produce the same object both times
  // and agree with the uncached path.
  RunSpec s;
  s.arch = Arch::kAlloy;
  s.workload = "FT";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 11;

  const auto direct = RunBatch({s}, BatchOptions{1, false, "t"});

  CellSpec cell{s, ""};
  BatchOptions opts{4, false, "t"};
  const auto cached = RunCells({cell, cell, cell}, opts);
  ASSERT_EQ(cached.size(), 3u);
  EXPECT_EQ(Serialize(cached[0]), Serialize(direct[0]));
  EXPECT_EQ(Serialize(cached[0]), Serialize(cached[1]));
  EXPECT_EQ(Serialize(cached[0]), Serialize(cached[2]));
}

TEST(Batch, CellKeyDistinguishesEverythingThatMattersToResults) {
  RunSpec s;
  s.workload = "LU";
  CellSpec a{s, ""};

  CellSpec b = a;
  b.spec.arch = Arch::kBear;
  EXPECT_NE(CellKey(a), CellKey(b));

  CellSpec c = a;
  c.spec.workload = "MG";
  EXPECT_NE(CellKey(a), CellKey(c));

  CellSpec d = a;
  d.variant = "gran4";
  EXPECT_NE(CellKey(a), CellKey(d));

  CellSpec e = a;
  e.spec.preset.mem.hbm.geometry.banks_per_rank *= 2;
  EXPECT_NE(CellKey(a), CellKey(e)) << "preset fields must feed the key";

  CellSpec f = a;
  f.spec.seed = a.spec.seed + 1;
  EXPECT_NE(CellKey(a), CellKey(f))
      << "the seed flows into trace generation and must feed the key";

  CellSpec g = a;
  g.spec.max_cycles = 12345;
  EXPECT_NE(CellKey(a), CellKey(g)) << "the cycle cap truncates results";

  CellSpec h1 = a, h2 = a;
  h1.spec.scale = 1e-5;
  h1.spec.ignore_env_scale = true;
  h2.spec.scale = 2e-5;
  h2.spec.ignore_env_scale = true;
  EXPECT_NE(CellKey(h1), CellKey(h2))
      << "scales differing below 1e-4 must not alias";

  // Keys are filenames: no separators or spaces.
  for (char ch : CellKey(a)) {
    EXPECT_TRUE(ch != '/' && ch != ' ') << "unsafe char in key";
  }
}

TEST(Batch, FingerprintTracksPresetBehavior) {
  const SimPreset base = EvalPreset();
  const std::uint64_t fp = SimFingerprint(base, "RDX");
  EXPECT_EQ(fp, SimFingerprint(base, "RDX"))
      << "must be stable within a process";

  SimPreset tweaked = base;
  tweaked.mem.hbm.timing.tRCD += 1;  // behaviorally meaningful change
  EXPECT_NE(fp, SimFingerprint(tweaked, "RDX"));

  // Per-workload canaries: a change confined to one workload's trace
  // generator must not hide behind a shared canary workload.
  EXPECT_NE(fp, SimFingerprint(base, "LU"));
  EXPECT_NE(SimFingerprint(base, "LU"), SimFingerprint(base, "HIST"));
}

TEST(Batch, DiskCacheRoundTripsAndRejectsBadFingerprint) {
  char tmpl[] = "/tmp/redcache_batch_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  RunSpec s;
  s.arch = Arch::kBear;
  s.workload = "RDX";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 13;
  CellSpec cell{s, "disk"};

  const RunResult first = RunCellCached(cell);
  const std::string path = dir + "/" + CellKey(cell) + ".stats";
  {
    // The entry is a v3 binary blob framed by the common serializer:
    // section tag, format version, behavioral fingerprint.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "expected cache file at " << path;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ser::Reader r(bytes);
    ASSERT_NO_THROW(r.Section("rcache"));
    EXPECT_EQ(r.U64(), kCacheFormatVersion);
    EXPECT_EQ(r.U64(), SimFingerprint(s.preset, s.workload));
    EXPECT_EQ(r.U64(), first.exec_cycles);
  }

  // A second process would hit the disk entry; emulate the load path by
  // checking it agrees with the in-memo result (same key -> same result).
  const RunResult again = RunCellCached(cell);
  EXPECT_EQ(Serialize(first), Serialize(again));

  // Rewrite the entry with a wrong fingerprint (structurally valid v3):
  // the loader must refuse it and re-simulate rather than serve stale
  // numbers.
  {
    ser::Writer w;
    w.Section("rcache");
    w.U64(kCacheFormatVersion);
    w.U64(0);  // fingerprint that matches no preset
    w.U64(1);
    StatSet empty;
    empty.Snapshot(w);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.buffer().size()));
  }
  // The in-process memo still holds the result; a fresh key forces a miss.
  CellSpec cell2{s, "disk2"};
  const RunResult fresh = RunCellCached(cell2);
  EXPECT_EQ(fresh.exec_cycles, first.exec_cycles)
      << "identical spec under a different key must re-derive the same run";

  ::unsetenv("REDCACHE_CACHE_DIR");
  std::remove(path.c_str());
  std::remove((dir + "/" + CellKey(cell2) + ".stats").c_str());
  ::rmdir(dir.c_str());
}

TEST(Batch, DiskCacheRoundTripsHistograms) {
  // No current workload emits histograms, so exercise the load path with a
  // hand-written entry in the v3 binary format: fingerprint + exec_cycles
  // + a StatSet holding counters and one histogram. RunCellCached must
  // serve it (memo-cold key) with the histogram restored exactly.
  char tmpl[] = "/tmp/redcache_batch_hist_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  RunSpec s;
  s.arch = Arch::kAlloy;
  s.workload = "RDX";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 17;
  CellSpec cell{s, "histrt"};

  StatSet source;
  source.Counter("hbm.reads") = 7;
  Histogram& src_h = source.Hist("lat", /*bucket_width=*/10,
                                 /*num_buckets=*/4);
  src_h.Add(5);               // bucket 0
  src_h.Add(15);              // bucket 1
  src_h.Add(15);              // bucket 1
  src_h.Add(25, /*weight=*/2);  // bucket 2, weighted
  src_h.Add(1000);            // overflow

  const std::string path = dir + "/" + CellKey(cell) + ".stats";
  {
    ser::Writer w;
    w.Section("rcache");
    w.U64(kCacheFormatVersion);
    w.U64(SimFingerprint(s.preset, s.workload));
    w.U64(4242);
    source.Snapshot(w);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.buffer().size()));
  }

  const RunResult r = RunCellCached(cell);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.exec_cycles, 4242u);
  EXPECT_EQ(r.stats.GetCounter("hbm.reads"), 7u);
  const Histogram* h = r.stats.FindHist("lat");
  ASSERT_NE(h, nullptr) << "cache hits must not drop histograms";
  EXPECT_EQ(h->bucket_width(), 10u);
  ASSERT_EQ(h->num_buckets(), 4u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 2u);
  EXPECT_EQ(h->bucket(2), 2u);  // weight-2 sample: buckets count weight
  EXPECT_EQ(h->bucket(3), 0u);
  EXPECT_EQ(h->overflow(), 1u);
  EXPECT_EQ(h->total_samples(), 5u);
  EXPECT_EQ(h->total_weight(), 6u);
  EXPECT_DOUBLE_EQ(h->weighted_sum(), src_h.weighted_sum());
  // Loaded StatSet must be byte-identical to the source under the
  // serializer (counters AND histogram state).
  ser::Writer ws, wl;
  source.Snapshot(ws);
  r.stats.Snapshot(wl);
  EXPECT_EQ(ws.buffer(), wl.buffer());

  ::unsetenv("REDCACHE_CACHE_DIR");
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(Batch, DiskCacheCorruptEntryIsMissAndRepaired) {
  // Satellite negative test for the v3 binary format: a truncated or
  // bit-flipped entry must load as a miss (never fault, never serve
  // garbage), the cell re-simulates, and the bad file is overwritten with
  // a valid entry that then round-trips.
  char tmpl[] = "/tmp/redcache_batch_corrupt_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  RunSpec s;
  s.arch = Arch::kBear;
  s.workload = "LREG";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 23;

  // Seed a valid entry, then damage it in place.
  CellSpec warm{s, "corrupt-seed"};
  const RunResult truth = RunCellCached(warm);
  const std::string warm_path = dir + "/" + CellKey(warm) + ".stats";
  std::string good_bytes;
  {
    std::ifstream in(warm_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    good_bytes.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  }
  ASSERT_GT(good_bytes.size(), 16u);

  const auto damage = [&](const std::string& variant,
                          const std::string& bytes) {
    SCOPED_TRACE(variant);
    // A fresh key so the in-process memo cannot mask the disk path.
    CellSpec cell{s, "corrupt-" + variant};
    const std::string path = dir + "/" + CellKey(cell) + ".stats";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const RunResult r = RunCellCached(cell);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.exec_cycles, truth.exec_cycles)
        << "corrupt entry must re-simulate, not serve garbage";
    // The entry was repaired: a byte-identical copy of a good entry.
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string repaired((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    EXPECT_EQ(repaired, good_bytes);
    std::remove(path.c_str());
  };

  damage("truncated", good_bytes.substr(0, good_bytes.size() / 3));
  std::string flipped = good_bytes;
  flipped[4] ^= 0x01;  // format-version byte
  damage("version-flip", flipped);
  damage("garbage", "this is not a cache entry at all");
  damage("empty", "");

  ::unsetenv("REDCACHE_CACHE_DIR");
  std::remove(warm_path.c_str());
  ::rmdir(dir.c_str());
}

TEST(Batch, WorkerExceptionsPropagateToCaller) {
  // A throwing cell must abort the batch with the exception rethrown on
  // the calling thread — not std::terminate from a worker.
  std::vector<RunSpec> specs(4);
  for (auto& s : specs) {
    s.arch = Arch::kNoHbm;
    s.workload = "LU";
    s.scale = 0.01;
    s.ignore_env_scale = true;
  }
  specs[2].workload = "NO_SUCH_WORKLOAD";

  BatchOptions par{4, false, "t"};
  EXPECT_THROW(RunBatch(specs, par), std::invalid_argument);
  BatchOptions serial{1, false, "t"};
  EXPECT_THROW(RunBatch(specs, serial), std::invalid_argument);

  EXPECT_THROW(ParallelFor(64, 8,
                           [](std::size_t i) {
                             if (i == 13) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(Batch, ParallelForHitsEveryIndexOnce) {
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  ParallelFor(kN, 8, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Batch, EnforceDiskCacheBoundEvictsLeastRecentlyUsed) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/redcache_batch_lru_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const fs::path dir = tmpl;

  const auto make = [&](const char* name, int age_minutes) {
    const fs::path p = dir / name;
    std::ofstream(p) << std::string(1000, 'x');
    fs::last_write_time(
        p, fs::file_time_type::clock::now() - std::chrono::minutes(age_minutes));
    return p;
  };
  const fs::path oldest = make("a.stats", 30);
  const fs::path middle = make("b.stats", 20);
  const fs::path newest = make("c.stats", 10);
  const fs::path other = make("not_a_cache_entry.txt", 40);

  // Within bound: nothing evicted.
  EnforceDiskCacheBound(dir.string(), 10000);
  EXPECT_TRUE(fs::exists(oldest));

  // 3000 bytes of entries, 2000 allowed: exactly the oldest goes.
  EnforceDiskCacheBound(dir.string(), 2000);
  EXPECT_FALSE(fs::exists(oldest));
  EXPECT_TRUE(fs::exists(middle));
  EXPECT_TRUE(fs::exists(newest));

  // Shrinking further evicts in recency order; non-.stats files are never
  // touched even though the oldest file in the directory.
  EnforceDiskCacheBound(dir.string(), 500);
  EXPECT_FALSE(fs::exists(middle));
  EXPECT_FALSE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(other));

  fs::remove_all(dir);
}

TEST(Batch, DiskCacheHitRefreshesRecencyAndProfilesAsDiskHit) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/redcache_batch_touch_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  RunSpec s;
  s.arch = Arch::kAlloy;
  s.workload = "RDX";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 19;
  CellSpec cell{s, "lru_touch"};  // memo-cold key: must go to disk

  const std::uint64_t fp = SimFingerprint(s.preset, s.workload);
  const std::string path = dir + "/" + CellKey(cell) + ".stats";
  {
    ser::Writer w;
    w.Section("rcache");
    w.U64(kCacheFormatVersion);
    w.U64(fp);
    w.U64(777);
    StatSet stats;
    stats.Counter("hbm.reads") = 5;
    stats.Snapshot(w);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.buffer().size()));
  }
  const auto stale = fs::file_time_type::clock::now() - std::chrono::hours(1);
  fs::last_write_time(path, stale);

  CellProfile prof;
  const RunResult r = RunCellCached(cell, &prof);
  EXPECT_EQ(r.exec_cycles, 777u);
  EXPECT_TRUE(prof.disk_hit);
  EXPECT_FALSE(prof.memo_hit);
  EXPECT_DOUBLE_EQ(prof.sim_seconds, 0.0) << "served from disk, not simulated";
  EXPECT_GT(prof.wall_seconds, 0.0);
  EXPECT_EQ(prof.exec_cycles, 777u);
  EXPECT_EQ(prof.key, CellKey(cell));
  // The hit refreshed the entry's mtime so LRU eviction keeps it.
  EXPECT_GT(fs::last_write_time(path), stale);

  ::unsetenv("REDCACHE_CACHE_DIR");
  fs::remove_all(fs::path(dir));
}

TEST(Batch, RunCellsFillsBatchReport) {
  RunSpec s;
  s.arch = Arch::kNoHbm;
  s.workload = "HIST";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 23;
  CellSpec a{s, "report_a"};
  RunSpec s2 = s;
  s2.workload = "LREG";
  CellSpec b{s2, "report_b"};

  BatchReport report;
  BatchOptions opts{1, false, "report-test"};
  opts.report = &report;
  // Serial execution: the duplicate in slot 1 is guaranteed a memo hit.
  const auto results = RunCells({a, a, b}, opts);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(report.label, "report-test");
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_GT(report.wall_seconds, 0.0);
  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_FALSE(report.cells[0].memo_hit);
  EXPECT_GT(report.cells[0].sim_seconds, 0.0);
  EXPECT_TRUE(report.cells[1].memo_hit);
  EXPECT_DOUBLE_EQ(report.cells[1].sim_seconds, 0.0);
  EXPECT_EQ(report.cells[0].exec_cycles, report.cells[1].exec_cycles);
  EXPECT_EQ(report.cells[0].exec_cycles, results[0].exec_cycles);
  EXPECT_EQ(report.cells[2].workload, "LREG");
  EXPECT_EQ(report.cells[0].key, CellKey(a));

  const std::string json = BatchReportJson(report);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(json, doc, &err)) << err << "\n" << json;
  const obs::JsonValue* summary = doc.Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->Find("cells")->number, 3.0);
  EXPECT_DOUBLE_EQ(summary->Find("memo_hits")->number, 1.0);
  EXPECT_DOUBLE_EQ(summary->Find("simulated")->number, 2.0);
  EXPECT_EQ(doc.Find("cells")->array.size(), 3u);
}

TEST(Batch, ResolveJobsHonorsEnvAndFloor) {
  ASSERT_EQ(::setenv("REDCACHE_JOBS", "3", 1), 0);
  EXPECT_EQ(ResolveJobs(0), 3u);
  EXPECT_EQ(ResolveJobs(5), 5u) << "explicit request beats the env";
  ASSERT_EQ(::setenv("REDCACHE_JOBS", "0", 1), 0);
  EXPECT_GE(ResolveJobs(0), 1u);
  ::unsetenv("REDCACHE_JOBS");
  EXPECT_GE(ResolveJobs(0), 1u);
}

}  // namespace
}  // namespace redcache
