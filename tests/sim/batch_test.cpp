// Batch engine invariants: worker-count determinism, result ordering,
// cell keys, the fingerprinted disk cache, and ParallelFor coverage.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace redcache {
namespace {

// Serialize everything a figure could print from a RunResult so "identical"
// means byte-identical output, not just matching headline cycles.
std::string Serialize(const RunResult& r) {
  std::ostringstream os;
  os << "completed=" << r.completed << "\nexec_cycles=" << r.exec_cycles
     << "\nhbm_energy=" << r.energy.HbmCacheNj()
     << "\nsystem_energy=" << r.energy.SystemNj() << "\n"
     << r.stats.ToString();
  return os.str();
}

std::vector<RunSpec> Matrix() {
  // 6 architectures x 3 workloads, tiny but nonzero runs.
  const Arch archs[] = {Arch::kNoHbm, Arch::kIdeal,    Arch::kAlloy,
                        Arch::kBear,  Arch::kRedAlpha, Arch::kRedCache};
  const char* wls[] = {"LU", "RDX", "HIST"};
  std::vector<RunSpec> specs;
  for (Arch a : archs) {
    for (const char* wl : wls) {
      RunSpec s;
      s.arch = a;
      s.workload = wl;
      s.scale = 0.02;
      s.ignore_env_scale = true;  // immune to REDCACHE_REFS_SCALE in CI
      s.seed = 11;
      specs.push_back(s);
    }
  }
  return specs;
}

TEST(Batch, DeterministicAcrossWorkerCounts) {
  const auto specs = Matrix();

  BatchOptions serial;
  serial.jobs = 1;
  serial.progress = false;
  const auto base = RunBatch(specs, serial);

  BatchOptions wide;
  wide.jobs = 8;
  wide.progress = false;
  const auto par = RunBatch(specs, wide);

  ASSERT_EQ(base.size(), specs.size());
  ASSERT_EQ(par.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(Serialize(base[i]), Serialize(par[i]))
        << "cell " << i << " (" << ToString(specs[i].arch) << "/"
        << specs[i].workload << ") diverged between jobs=1 and jobs=8";
  }
}

TEST(Batch, RunCellsMatchesRunBatchAndSharesDuplicates) {
  // The same cell requested twice must produce the same object both times
  // and agree with the uncached path.
  RunSpec s;
  s.arch = Arch::kAlloy;
  s.workload = "FT";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 11;

  const auto direct = RunBatch({s}, BatchOptions{1, false, "t"});

  CellSpec cell{s, ""};
  BatchOptions opts{4, false, "t"};
  const auto cached = RunCells({cell, cell, cell}, opts);
  ASSERT_EQ(cached.size(), 3u);
  EXPECT_EQ(Serialize(cached[0]), Serialize(direct[0]));
  EXPECT_EQ(Serialize(cached[0]), Serialize(cached[1]));
  EXPECT_EQ(Serialize(cached[0]), Serialize(cached[2]));
}

TEST(Batch, CellKeyDistinguishesEverythingThatMattersToResults) {
  RunSpec s;
  s.workload = "LU";
  CellSpec a{s, ""};

  CellSpec b = a;
  b.spec.arch = Arch::kBear;
  EXPECT_NE(CellKey(a), CellKey(b));

  CellSpec c = a;
  c.spec.workload = "MG";
  EXPECT_NE(CellKey(a), CellKey(c));

  CellSpec d = a;
  d.variant = "gran4";
  EXPECT_NE(CellKey(a), CellKey(d));

  CellSpec e = a;
  e.spec.preset.mem.hbm.geometry.banks_per_rank *= 2;
  EXPECT_NE(CellKey(a), CellKey(e)) << "preset fields must feed the key";

  // Keys are filenames: no separators or spaces.
  for (char ch : CellKey(a)) {
    EXPECT_TRUE(ch != '/' && ch != ' ') << "unsafe char in key";
  }
}

TEST(Batch, FingerprintTracksPresetBehavior) {
  const SimPreset base = EvalPreset();
  const std::uint64_t fp = SimFingerprint(base);
  EXPECT_EQ(fp, SimFingerprint(base)) << "must be stable within a process";

  SimPreset tweaked = base;
  tweaked.mem.hbm.timing.tRCD += 1;  // behaviorally meaningful change
  EXPECT_NE(fp, SimFingerprint(tweaked));
}

TEST(Batch, DiskCacheRoundTripsAndRejectsBadFingerprint) {
  char tmpl[] = "/tmp/redcache_batch_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  ASSERT_EQ(::setenv("REDCACHE_CACHE_DIR", dir.c_str(), 1), 0);

  RunSpec s;
  s.arch = Arch::kBear;
  s.workload = "RDX";
  s.scale = 0.02;
  s.ignore_env_scale = true;
  s.seed = 13;
  CellSpec cell{s, "disk"};

  const RunResult first = RunCellCached(cell);
  const std::string path = dir + "/" + CellKey(cell) + ".stats";
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "expected cache file at " << path;
    std::string word;
    in >> word;
    EXPECT_EQ(word, "fingerprint");
  }

  // A second process would hit the disk entry; emulate the load path by
  // checking it agrees with the in-memo result (same key -> same result).
  const RunResult again = RunCellCached(cell);
  EXPECT_EQ(Serialize(first), Serialize(again));

  // Corrupt the fingerprint: the loader must refuse the entry and
  // re-simulate rather than serve stale numbers.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "fingerprint 0\nexec_cycles 1\n";
  }
  // The in-process memo still holds the result; a fresh key forces a miss.
  CellSpec cell2{s, "disk2"};
  const RunResult fresh = RunCellCached(cell2);
  EXPECT_EQ(fresh.exec_cycles, first.exec_cycles)
      << "identical spec under a different key must re-derive the same run";

  ::unsetenv("REDCACHE_CACHE_DIR");
  std::remove(path.c_str());
  std::remove((dir + "/" + CellKey(cell2) + ".stats").c_str());
  ::rmdir(dir.c_str());
}

TEST(Batch, ParallelForHitsEveryIndexOnce) {
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  ParallelFor(kN, 8, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Batch, ResolveJobsHonorsEnvAndFloor) {
  ASSERT_EQ(::setenv("REDCACHE_JOBS", "3", 1), 0);
  EXPECT_EQ(ResolveJobs(0), 3u);
  EXPECT_EQ(ResolveJobs(5), 5u) << "explicit request beats the env";
  ASSERT_EQ(::setenv("REDCACHE_JOBS", "0", 1), 0);
  EXPECT_GE(ResolveJobs(0), 1u);
  ::unsetenv("REDCACHE_JOBS");
  EXPECT_GE(ResolveJobs(0), 1u);
}

}  // namespace
}  // namespace redcache
