// SMARTS sampled-simulation estimator tests: the sampled estimate of a
// full detailed run's length must land inside (a padded version of) its
// own reported confidence interval, the degenerate short-run fallback must
// stay exact, and the t-table / argument validation must hold.
#include "sim/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/runner.hpp"

namespace redcache {
namespace {

RunSpec TinySpec(const std::string& policy, const std::string& wl) {
  RunSpec spec;
  spec.policy = policy;
  spec.workload = wl;
  spec.scale = 0.02;
  spec.ignore_env_scale = true;
  spec.preset = EvalPreset();
  spec.preset.hierarchy.num_cores = 4;
  return spec;
}

TEST(Sampling, TCriticalTable) {
  EXPECT_DOUBLE_EQ(TCritical95(0), 0.0);
  EXPECT_DOUBLE_EQ(TCritical95(1), 12.706);
  EXPECT_DOUBLE_EQ(TCritical95(10), 2.228);
  EXPECT_DOUBLE_EQ(TCritical95(30), 2.042);
  EXPECT_DOUBLE_EQ(TCritical95(31), 1.96);
  EXPECT_DOUBLE_EQ(TCritical95(100000), 1.96);
}

TEST(Sampling, RejectsBadOptions) {
  const RunSpec spec = TinySpec("RedCache", "LREG");
  SamplingOptions opts;
  opts.fraction = 0.0;
  EXPECT_THROW(RunSampled(spec, opts), std::invalid_argument);
  opts.fraction = 1.5;
  EXPECT_THROW(RunSampled(spec, opts), std::invalid_argument);
  opts.fraction = 0.1;
  opts.interval_cycles = 0;
  EXPECT_THROW(RunSampled(spec, opts), std::invalid_argument);
}

TEST(Sampling, EstimateBracketsFullRun) {
  const RunSpec spec = TinySpec("RedCache", "RDX");
  const RunResult full = RunOne(spec);
  ASSERT_TRUE(full.completed);
  const auto actual = static_cast<double>(full.exec_cycles);

  SamplingOptions opts;
  // Size the intervals off the run so this stays meaningful if workload
  // scales drift: ~40 strides, a quarter of each measured in detail.
  opts.interval_cycles = std::max<Cycle>(full.exec_cycles / 160, 64);
  opts.fraction = 0.25;
  const SamplingEstimate est = RunSampled(spec, opts);

  EXPECT_FALSE(est.degenerate);
  EXPECT_GE(est.intervals, 8u);
  EXPECT_GT(est.total_refs, 0u);
  EXPECT_GT(est.est_exec_cycles, 0.0);
  // The ratio estimate must bracket the truth within its own reported CI,
  // padded by 5% of the actual for systematic-sampling bias on a run this
  // short (real SMARTS runs have thousands of intervals, we have dozens).
  const double tolerance = est.ci_half_cycles + 0.05 * actual;
  EXPECT_NEAR(est.est_exec_cycles, actual, tolerance)
      << "intervals=" << est.intervals << " ci_pct=" << est.ci_pct;

  // The estimated stats carry the estimate and its quality gauges.
  EXPECT_EQ(est.est_stats.GetCounter("gauge.sampling.intervals"),
            est.intervals);
  EXPECT_EQ(est.est_stats.GetCounter("sys.exec_cycles"),
            static_cast<std::uint64_t>(std::llround(est.est_exec_cycles)));
  // Ratio-scaled counter estimates track the full run loosely (20%).
  const auto full_hits =
      static_cast<double>(full.stats.GetCounter("dramcache.hits"));
  if (full_hits > 1000.0) {
    const auto est_hits =
        static_cast<double>(est.est_stats.GetCounter("dramcache.hits"));
    EXPECT_NEAR(est_hits, full_hits, 0.20 * full_hits);
  }
}

TEST(Sampling, DeterministicForFixedSeed) {
  const RunSpec spec = TinySpec("RedCache", "LREG");
  SamplingOptions opts;
  opts.interval_cycles = 4096;
  opts.fraction = 0.2;
  const SamplingEstimate a = RunSampled(spec, opts);
  const SamplingEstimate b = RunSampled(spec, opts);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.total_refs, b.total_refs);
  EXPECT_DOUBLE_EQ(a.est_exec_cycles, b.est_exec_cycles);
  EXPECT_DOUBLE_EQ(a.ci_pct, b.ci_pct);
}

TEST(Sampling, ShortRunCollapsesToOneExactInterval) {
  // An interval far longer than the run: the seed-derived phase overshoots
  // the functional pass, the retry at phase 0 captures exactly one
  // checkpoint at cycle 0, and the single detailed interval covers the
  // whole run — so the "estimate" is the exact detailed run length with a
  // zero CI.
  const RunSpec spec = TinySpec("Alloy", "LREG");
  const RunResult full = RunOne(spec);
  ASSERT_TRUE(full.completed);

  SamplingOptions opts;
  opts.interval_cycles = full.exec_cycles * 16;
  opts.fraction = 0.5;
  const SamplingEstimate est = RunSampled(spec, opts);
  EXPECT_FALSE(est.degenerate);
  EXPECT_EQ(est.intervals, 1u);
  EXPECT_DOUBLE_EQ(est.est_exec_cycles,
                   static_cast<double>(full.exec_cycles));
  EXPECT_DOUBLE_EQ(est.ci_pct, 0.0);
  EXPECT_EQ(est.est_stats.GetCounter("gauge.sampling.ci_pct"), 0u);
  // A single interval spanning the run reproduces its counters exactly.
  EXPECT_EQ(est.est_stats.GetCounter("core.refs"),
            full.stats.GetCounter("core.refs"));
}

}  // namespace
}  // namespace redcache
