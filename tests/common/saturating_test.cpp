#include "common/saturating.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(SaturatingCounter, IncrementsToMaxAndHolds) {
  SaturatingCounter c(3);
  for (int i = 0; i < 10; ++i) c.Increment();
  EXPECT_EQ(c.value(), 3u);
  EXPECT_TRUE(c.Saturated());
}

TEST(SaturatingCounter, DecrementsToZeroAndHolds) {
  SaturatingCounter c(3, 1);
  c.Decrement();
  c.Decrement();
  EXPECT_EQ(c.value(), 0u);
}

TEST(SaturatingCounter, ResetClampsToMax) {
  SaturatingCounter c(5);
  c.Reset(100);
  EXPECT_EQ(c.value(), 5u);
  c.Reset(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(SaturatingCounter, InitialValueClamped) {
  SaturatingCounter c(4, 9);
  EXPECT_EQ(c.value(), 4u);
}

}  // namespace
}  // namespace redcache
