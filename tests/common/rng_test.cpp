#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace redcache {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values occur
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.Chance(0.25)) hits++;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, GeometricMeanApproximatesTarget) {
  Rng r(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.Geometric(8.0));
  EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, GeometricDegenerateMeanIsOne) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.Geometric(0.5), 1u);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng r(23);
  const std::uint64_t n = 1000;
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (r.Zipf(n, 1.0) < n / 10) low++;
  }
  // With skew, far more than 10% of draws land in the lowest 10% of ranks.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.25);
}

TEST(Rng, ZipfBoundsRespected) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Zipf(57, 0.8), 57u);
  }
  EXPECT_EQ(r.Zipf(1, 0.8), 0u);
}

TEST(Rng, Mix64IsStationary) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

}  // namespace
}  // namespace redcache
