#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(65));
  EXPECT_TRUE(IsPow2(std::uint64_t{1} << 63));
}

TEST(BitOps, Log2Floors) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(3), 1u);
  EXPECT_EQ(Log2(1024), 10u);
}

TEST(BitOps, BitsExtracts) {
  EXPECT_EQ(Bits(0b110100, 2, 3), 0b101u);
  EXPECT_EQ(Bits(~std::uint64_t{0}, 60, 4), 0xfu);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(1, 64), 1u);
}

}  // namespace
}  // namespace redcache
