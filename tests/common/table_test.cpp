#include "common/table.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"gamma", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.Render());
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

TEST(TextTable, PctFormatsPercent) {
  EXPECT_EQ(TextTable::Pct(0.315, 1), "31.5%");
  EXPECT_EQ(TextTable::Pct(1.0, 0), "100%");
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "yyyyy"});
  t.AddRow({"longervalue", "1"});
  const std::string out = t.Render();
  // Header row must be at least as wide as the longest cell.
  const auto first_newline = out.find('\n');
  EXPECT_GE(first_newline, std::string{"longervalue  yyyyy"}.size());
}

}  // namespace
}  // namespace redcache
