#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace redcache {
namespace {

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(/*bucket_width=*/10, /*num_buckets=*/4);
  h.Add(0);
  h.Add(9);
  h.Add(10);
  h.Add(39);
  h.Add(40);   // overflow
  h.Add(400);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total_samples(), 6u);
}

TEST(Histogram, WeightedMean) {
  Histogram h(1, 16);
  h.Add(2, 3);  // weight 3
  h.Add(8, 1);
  EXPECT_DOUBLE_EQ(h.Mean(), (2.0 * 3 + 8.0) / 4.0);
}

TEST(Histogram, SnapshotRestoreReproducesObservedHistogram) {
  Histogram orig(/*bucket_width=*/10, /*num_buckets=*/4);
  orig.Add(5, 2);
  orig.Add(25);
  orig.Add(70, 3);  // overflow

  ser::Writer w;
  orig.Snapshot(w);
  Histogram restored;
  ser::Reader r(w.buffer().data(), w.buffer().size());
  restored.Restore(r);
  r.ExpectEnd();

  ASSERT_EQ(restored.num_buckets(), orig.num_buckets());
  for (std::size_t i = 0; i < orig.num_buckets(); ++i) {
    EXPECT_EQ(restored.bucket(i), orig.bucket(i));
  }
  EXPECT_EQ(restored.bucket_width(), orig.bucket_width());
  EXPECT_EQ(restored.overflow(), orig.overflow());
  EXPECT_EQ(restored.total_samples(), orig.total_samples());
  EXPECT_EQ(restored.total_weight(), orig.total_weight());
  EXPECT_DOUBLE_EQ(restored.Mean(), orig.Mean());
  EXPECT_EQ(restored.Quantile(0.5), orig.Quantile(0.5));
}

TEST(Histogram, QuantileFindsMedianBucket) {
  Histogram h(1, 100);
  for (std::uint64_t v = 0; v < 100; ++v) h.Add(v);
  const auto median = h.Quantile(0.5);
  EXPECT_GE(median, 45u);
  EXPECT_LE(median, 55u);
}

TEST(Histogram, QuantileZeroReturnsMinimumObservedBucket) {
  Histogram h(/*bucket_width=*/10, /*num_buckets=*/8);
  h.Add(35);  // bucket 3 — the only observed bucket
  h.Add(37);
  // q=0 must land in the first bucket with observed weight (end of bucket
  // 3 = 39), not in the empty bucket 0.
  EXPECT_EQ(h.Quantile(0.0), 39u);
  EXPECT_EQ(h.Quantile(1.0), 39u);
}

TEST(Histogram, QuantileSmallTargetDoesNotRoundToEmptyBucket) {
  Histogram h(1, 16);
  h.Add(7);
  h.Add(8);
  h.Add(9);
  // q*total = 0.3: flooring to target 0 used to return bucket 0's end even
  // though nothing was ever observed below 7.
  EXPECT_EQ(h.Quantile(0.1), 7u);
  EXPECT_EQ(h.Quantile(0.5), 8u);
}

TEST(Histogram, QuantileWeighted) {
  Histogram h(1, 16);
  h.Add(2, 97);
  h.Add(12, 3);
  EXPECT_EQ(h.Quantile(0.5), 2u);
  EXPECT_EQ(h.Quantile(0.99), 12u);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1, 4);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h(1, 4);
  h.Add(1);
  h.Add(100);
  h.Clear();
  EXPECT_EQ(h.total_samples(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(StatSet, CounterRoundTrip) {
  StatSet s;
  s.Counter("a.b") += 3;
  s.Counter("a.b") += 4;
  EXPECT_EQ(s.GetCounter("a.b"), 7u);
  EXPECT_EQ(s.GetCounter("missing"), 0u);
  EXPECT_TRUE(s.HasCounter("a.b"));
  EXPECT_FALSE(s.HasCounter("missing"));
}

TEST(StatSet, DiffSubtracts) {
  StatSet before, after;
  before.Counter("x") = 10;
  after.Counter("x") = 25;
  after.Counter("y") = 5;
  const StatSet d = after.Diff(before);
  EXPECT_EQ(d.GetCounter("x"), 15u);
  EXPECT_EQ(d.GetCounter("y"), 5u);
}

TEST(StatSet, AbsorbPrefixesAndAdds) {
  StatSet a, b;
  a.Counter("hits") = 1;
  b.Counter("hits") = 2;
  a.Absorb(b, "sub.");
  EXPECT_EQ(a.GetCounter("hits"), 1u);
  EXPECT_EQ(a.GetCounter("sub.hits"), 2u);
}

TEST(StatSet, HistReusesInstance) {
  StatSet s;
  s.Hist("h", 2, 8).Add(3);
  s.Hist("h").Add(5);
  EXPECT_EQ(s.FindHist("h")->total_samples(), 2u);
  EXPECT_EQ(s.FindHist("nope"), nullptr);
}

TEST(StatSet, ToStringListsCounters) {
  StatSet s;
  s.Counter("z") = 1;
  s.Counter("a") = 2;
  const std::string out = s.ToString();
  EXPECT_NE(out.find("a = 2"), std::string::npos);
  EXPECT_NE(out.find("z = 1"), std::string::npos);
}

TEST(NaturalNameLess, OrdersDigitRunsByValue) {
  EXPECT_TRUE(NaturalNameLess("hbm.chan2.act", "hbm.chan10.act"));
  EXPECT_FALSE(NaturalNameLess("hbm.chan10.act", "hbm.chan2.act"));
  EXPECT_TRUE(NaturalNameLess("chan9", "chan10"));
  EXPECT_TRUE(NaturalNameLess("bank1.row99", "bank1.row100"));
  // Non-digit segments stay lexicographic.
  EXPECT_TRUE(NaturalNameLess("alpha", "beta"));
  EXPECT_TRUE(NaturalNameLess("ctrl.hits", "ctrl.misses"));
  // Prefix relationships.
  EXPECT_TRUE(NaturalNameLess("chan1", "chan1.act"));
  EXPECT_FALSE(NaturalNameLess("chan1", "chan1"));
  // Equal numeric value: fewer leading zeros first, but a total order.
  EXPECT_TRUE(NaturalNameLess("a1", "a01"));
  EXPECT_FALSE(NaturalNameLess("a01", "a1"));
  EXPECT_TRUE(NaturalNameLess("a01", "a2"));
}

TEST(NaturalNameLess, IsStrictWeakOrderOnHierarchicalNames) {
  std::vector<std::string> names = {
      "hbm.chan10.act", "hbm.chan2.act", "hbm.chan0.act", "ddr4.chan1.act",
      "hbm.chan2.pre",  "ctrl.hits",     "hbm.chan10.pre"};
  std::sort(names.begin(), names.end(), NaturalNameLess);
  const std::vector<std::string> want = {
      "ctrl.hits",      "ddr4.chan1.act", "hbm.chan0.act", "hbm.chan2.act",
      "hbm.chan2.pre",  "hbm.chan10.act", "hbm.chan10.pre"};
  EXPECT_EQ(names, want);
}

TEST(StatSet, ToStringGroupsChannelsNumerically) {
  StatSet s;
  s.Counter("hbm.chan10.act") = 1;
  s.Counter("hbm.chan2.act") = 2;
  s.Counter("hbm.chan0.act") = 3;
  const std::string out = s.ToString();
  const auto p0 = out.find("hbm.chan0.act");
  const auto p2 = out.find("hbm.chan2.act");
  const auto p10 = out.find("hbm.chan10.act");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p10, std::string::npos);
  EXPECT_LT(p0, p2);
  EXPECT_LT(p2, p10) << "chan10 must not sort between chan1 and chan2";
}

}  // namespace
}  // namespace redcache
