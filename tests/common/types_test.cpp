#include "common/types.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(Types, BlockAlignMasksLowBits) {
  EXPECT_EQ(BlockAlign(0), 0u);
  EXPECT_EQ(BlockAlign(63), 0u);
  EXPECT_EQ(BlockAlign(64), 64u);
  EXPECT_EQ(BlockAlign(130), 128u);
}

TEST(Types, BlockIndexMatchesAlignment) {
  EXPECT_EQ(BlockIndex(0), 0u);
  EXPECT_EQ(BlockIndex(64), 1u);
  EXPECT_EQ(BlockIndex(64 * 1000 + 63), 1000u);
}

TEST(Types, PageIndexAndBlocksPerPage) {
  EXPECT_EQ(PageIndex(4095), 0u);
  EXPECT_EQ(PageIndex(4096), 1u);
  EXPECT_EQ(kBlocksPerPage, 64u);
}

TEST(Types, SizeLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Types, IsWriteCoversBothStoreKinds) {
  EXPECT_FALSE(IsWrite(AccessType::kRead));
  EXPECT_TRUE(IsWrite(AccessType::kWrite));
  EXPECT_TRUE(IsWrite(AccessType::kWriteback));
}

TEST(Types, ToStringNames) {
  EXPECT_STREQ(ToString(AccessType::kRead), "read");
  EXPECT_STREQ(ToString(AccessType::kWrite), "write");
  EXPECT_STREQ(ToString(AccessType::kWriteback), "writeback");
}

}  // namespace
}  // namespace redcache
