#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

namespace redcache::ser {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.Bool(true);
  w.Bool(false);
  w.F64(3.14159265358979);
  w.F64(-0.0);
  w.Str("hello");
  w.Str("");

  Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_DOUBLE_EQ(r.F64(), 3.14159265358979);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern preserved
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(Serialize, SequencesRoundTrip) {
  Writer w;
  const std::vector<std::uint64_t> v = {1, 2, 3, ~std::uint64_t{0}};
  const std::deque<std::uint32_t> d = {9, 8};
  const std::vector<char> flags = {1, 0, 1};
  w.U64Seq(v);
  w.U64Seq(d);
  w.U8Seq(flags);

  Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(r.U64Vec(), v);
  EXPECT_EQ(r.U64Vec(), (std::vector<std::uint64_t>{9, 8}));
  ASSERT_EQ(r.SeqLen(1), flags.size());
  for (const char f : flags) EXPECT_EQ(r.U8(), static_cast<std::uint8_t>(f));
  r.ExpectEnd();
}

TEST(Serialize, SectionTagGuards) {
  Writer w;
  w.Section("alpha");
  w.U64(7);

  Reader ok(w.buffer().data(), w.buffer().size());
  EXPECT_NO_THROW(ok.Section("alpha"));
  EXPECT_EQ(ok.U64(), 7u);

  Reader bad(w.buffer().data(), w.buffer().size());
  EXPECT_THROW(bad.Section("beta"), SerializeError);
}

TEST(Serialize, TruncationThrowsNotFaults) {
  Writer w;
  w.U64(1);
  w.Str("some payload");
  const auto& buf = w.buffer();
  // Every proper prefix must throw SerializeError, never read off the end.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    Reader r(buf.data(), cut);
    EXPECT_THROW(
        {
          r.U64();
          r.Str();
        },
        SerializeError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Serialize, SeqLenRejectsGiantLengths) {
  Writer w;
  w.U64(std::numeric_limits<std::uint64_t>::max());  // absurd element count
  Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_THROW(r.SeqLen(8), SerializeError);
}

TEST(Serialize, ExpectEndRejectsTrailingBytes) {
  Writer w;
  w.U32(5);
  w.U8(0);  // trailing garbage
  Reader r(w.buffer().data(), w.buffer().size());
  r.U32();
  EXPECT_THROW(r.ExpectEnd(), SerializeError);
}

TEST(Serialize, NameTagIsStable) {
  // Compile-time FNV-1a; pinned so a hash change (which would invalidate
  // every on-disk blob) cannot slip in silently.
  static_assert(NameTag("") == 2166136261u);
  EXPECT_EQ(NameTag("sys"), NameTag("sys"));
  EXPECT_NE(NameTag("sys"), NameTag("chan"));
}

}  // namespace
}  // namespace redcache::ser
