#include "dramcache/banshee.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

// SmallMemConfig gives a 1 MiB HBM cache: 512 sets of 2 KiB pages, so two
// addresses 1 MiB apart share a set with different page tags.
constexpr Addr kPageA = 0x10000;
constexpr Addr kPageB = kPageA + 1_MiB;

std::unique_ptr<BansheeController> MakeBanshee() {
  return std::make_unique<BansheeController>(SmallMemConfig());
}

TEST(Banshee, ColdReadInstallsThenHits) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);
  h.RunToIdle();
  h.Read(kPageA);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.read_hits"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.resident_lines"), 1u);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(Banshee, TagsLiveInSramSoHitsSkipProbeTraffic) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);
  h.RunToIdle();
  const auto hbm_before = h.Stats().GetCounter("hbm.read_bursts");
  h.Read(kPageA);
  h.RunToIdle();
  // One data read, no tag probe.
  EXPECT_EQ(h.Stats().GetCounter("hbm.read_bursts"), hbm_before + 1);
}

TEST(Banshee, FootprintWidensOneBlockAtATime) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);
  h.RunToIdle();
  h.Read(kPageA + 64);  // page hit, block absent: fetch just this block
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 2u);
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 2u);
  EXPECT_EQ(s.GetCounter("ctrl.resident_lines"), 2u);
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 2u);  // block-granular fetches
}

TEST(Banshee, StreamingPageMustEarnItsSlot) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);  // install; resident freq seeded to 1
  h.RunToIdle();
  h.Read(kPageA);  // hit; freq -> 2
  h.RunToIdle();

  // Challenger B needs its count to exceed the resident's frequency: the
  // first two conflicting reads bypass, the third wins the set.
  h.Read(kPageB);
  h.RunToIdle();
  h.Read(kPageB);
  h.RunToIdle();
  StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_replacements"), 0u);
  EXPECT_EQ(s.GetCounter("ctrl.read_bypasses"), 2u);

  h.Read(kPageB);
  h.RunToIdle();
  s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_replacements"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.evictions"), 1u);  // A's lone clean block
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 0u);
  EXPECT_EQ(h.completions.size(), 5u);
}

TEST(Banshee, DirtyBlocksStreamOutOnReplacement) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);
  h.RunToIdle();
  h.Writeback(kPageA);  // dirty the resident block
  h.RunToIdle();
  const auto mm_writes_before = h.Stats().GetCounter("ddr4.write_bursts");

  for (int i = 0; i < 3; ++i) {  // displace A via the frequency gate
    h.Read(kPageB);
    h.RunToIdle();
  }
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_replacements"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), mm_writes_before + 1);
}

TEST(Banshee, WritebackPageMissBypassesToMainMemory) {
  ControllerHarness h(MakeBanshee());
  h.Writeback(kPageA);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.write_bypasses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.resident_lines"), 0u);  // writes never allocate
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 0u);
}

TEST(Banshee, WritebackOnPageHitInstallsTheBlock) {
  ControllerHarness h(MakeBanshee());
  h.Read(kPageA);
  h.RunToIdle();
  h.Writeback(kPageA + 64);  // page hit, absent block: install dirty
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 2u);
  EXPECT_EQ(s.GetCounter("ctrl.resident_lines"), 2u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);  // absorbed in HBM
}

TEST(Banshee, FillConservationHolds) {
  ControllerHarness h(MakeBanshee());
  for (int round = 0; round < 4; ++round) {
    for (Addr base : {kPageA, kPageB}) {
      h.Read(base + Addr{64} * static_cast<Addr>(round));
      h.Writeback(base + 128);
    }
  }
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.fills"),
            s.GetCounter("ctrl.evictions") +
                s.GetCounter("ctrl.resident_lines"));
}

}  // namespace
}  // namespace redcache
