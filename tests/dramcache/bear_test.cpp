#include "dramcache/bear.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

TEST(PresenceFilter, AddThenMayContain) {
  PresenceFilter f(1024);
  EXPECT_FALSE(f.MayContain(42));
  f.Add(42);
  EXPECT_TRUE(f.MayContain(42));
}

TEST(PresenceFilter, RemoveRestoresAbsence) {
  PresenceFilter f(1024);
  f.Add(7);
  f.Remove(7);
  EXPECT_FALSE(f.MayContain(7));
}

TEST(PresenceFilter, CountingToleratesDuplicates) {
  PresenceFilter f(1024);
  f.Add(9);
  f.Add(9);
  f.Remove(9);
  EXPECT_TRUE(f.MayContain(9));  // one copy still counted
  f.Remove(9);
  EXPECT_FALSE(f.MayContain(9));
}

TEST(PresenceFilter, LowFalsePositiveRateWhenSized) {
  PresenceFilter f(8192);
  for (Addr a = 0; a < 512; ++a) f.Add(a);
  std::uint64_t fp = 0;
  for (Addr a = 100000; a < 102000; ++a) {
    if (f.MayContain(a)) fp++;
  }
  EXPECT_LT(fp, 200u);  // < 10%
}

TEST(Bear, ColdReadSkipsProbe) {
  ControllerHarness h(std::make_unique<BearController>(SmallMemConfig()));
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.probe_skips"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 1u);
}

TEST(Bear, MostFillsAreBypassed) {
  ControllerHarness h(std::make_unique<BearController>(SmallMemConfig()));
  for (Addr a = 0; a < 4096; ++a) {
    h.Read(a * 64 + 7_MiB);
  }
  h.RunToIdle();
  const StatSet s = h.Stats();
  const double bypass_frac =
      static_cast<double>(s.GetCounter("ctrl.fill_bypasses")) /
      static_cast<double>(s.GetCounter("ctrl.fill_bypasses") +
                          s.GetCounter("ctrl.fills"));
  EXPECT_GT(bypass_frac, 0.80);
  EXPECT_LT(bypass_frac, 0.97);
}

TEST(Bear, WriteMissBypassesToMainMemory) {
  ControllerHarness h(std::make_unique<BearController>(SmallMemConfig()));
  h.Writeback(0x5000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.write_miss_bypasses"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 0u);
}

TEST(Bear, FilledBlockHitsLater) {
  ControllerHarness h(std::make_unique<BearController>(SmallMemConfig()));
  // Sampled sets (set % 32 == 0) always fill. Set 0 => address with
  // line index multiple of num_sets... simply use address 0.
  h.Read(0);
  h.RunToIdle();
  ASSERT_EQ(h.Stats().GetCounter("ctrl.fills"), 1u);
  h.Read(0);
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits"), 1u);
}

TEST(Bear, UsesLessHbmTrafficThanAlloyOnStreaming) {
  auto run = [](std::unique_ptr<MemController> ctrl) {
    ControllerHarness h(std::move(ctrl));
    for (Addr a = 0; a < 2048; ++a) {
      h.Read(a * 64 + 3_MiB);
    }
    h.RunToIdle();
    const StatSet s = h.Stats();
    return s.GetCounter("hbm.read_bursts") + s.GetCounter("hbm.write_bursts");
  };
  const auto bear = run(std::make_unique<BearController>(SmallMemConfig()));
  const auto alloy = run(std::make_unique<AlloyController>(SmallMemConfig()));
  EXPECT_LT(bear, alloy / 2);  // streaming: Bear avoids probes and fills
}

}  // namespace
}  // namespace redcache
