#include "dramcache/assoc_tags.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(AssocTags, GeometryDerivation) {
  AssocTags t(1_MiB, 4);
  EXPECT_EQ(t.num_sets(), 1_MiB / 64 / 4);
  EXPECT_EQ(t.ways(), 4u);
}

TEST(AssocTags, FindWayLocatesInstalledBlock) {
  AssocTags t(1_MiB, 2);
  const Addr a = 0x4000;
  EXPECT_EQ(t.FindWay(a), 2u);  // absent
  auto& line = t.line(t.SetOf(a), 1);
  line.valid = true;
  line.tag = t.TagOf(a);
  EXPECT_EQ(t.FindWay(a), 1u);
  EXPECT_TRUE(t.Hit(a));
}

TEST(AssocTags, VictimPrefersInvalidWays) {
  AssocTags t(1_MiB, 4);
  auto& l0 = t.line(7, 0);
  l0.valid = true;
  t.Touch(7, 0);
  EXPECT_NE(t.VictimWay(7), 0u);  // some invalid way wins
}

TEST(AssocTags, VictimIsLeastRecentlyTouched) {
  AssocTags t(1_MiB, 3);
  for (std::uint32_t w = 0; w < 3; ++w) {
    t.line(9, w).valid = true;
    t.Touch(9, w);
  }
  t.Touch(9, 0);  // refresh way 0: way 1 is now LRU
  EXPECT_EQ(t.VictimWay(9), 1u);
}

TEST(AssocTags, VictimAddrRoundTrips) {
  AssocTags t(1_MiB, 2);
  const Addr a = BlockAlign(0x123480);
  const std::uint64_t set = t.SetOf(a);
  auto& line = t.line(set, 1);
  line.valid = true;
  line.tag = t.TagOf(a);
  EXPECT_EQ(t.VictimAddr(set, 1), a);
}

TEST(AssocTags, HbmAddrDistinctPerWayAndWithinDevice) {
  AssocTags t(1_MiB, 4);
  EXPECT_NE(t.HbmAddr(5, 0), t.HbmAddr(5, 1));
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_LT(t.HbmAddr(t.num_sets() - 1, w), 1_MiB);
  }
}

TEST(AssocTags, RcountSaturates) {
  AssocTags t(1_MiB, 2);
  for (int i = 0; i < 300; ++i) (void)t.BumpRcount(3, 1);
  EXPECT_EQ(t.line(3, 1).r_count, 255);
}

}  // namespace
}  // namespace redcache
