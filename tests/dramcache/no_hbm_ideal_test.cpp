#include <gtest/gtest.h>

#include "controller_harness.hpp"
#include "dramcache/ideal.hpp"
#include "dramcache/no_hbm.hpp"

namespace redcache {
namespace {

TEST(NoHbm, ReadServedByMainMemoryOnly) {
  ControllerHarness h(std::make_unique<NoHbmController>(SmallMemConfig()));
  const auto tag = h.Read(0x4000);
  h.RunToIdle();
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(h.completions[0].tag, tag);
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 0u);  // device absent
}

TEST(NoHbm, WritebackIsPostedWrite) {
  ControllerHarness h(std::make_unique<NoHbmController>(SmallMemConfig()));
  h.Writeback(0x8000);
  h.RunToIdle();
  EXPECT_TRUE(h.completions.empty());
  EXPECT_EQ(h.Stats().GetCounter("ddr4.write_bursts"), 1u);
}

TEST(NoHbm, ManyRequestsAllComplete) {
  ControllerHarness h(std::make_unique<NoHbmController>(SmallMemConfig()));
  std::size_t reads = 0;
  for (Addr a = 0; a < 200; ++a) {
    if (h.ctrl().CanAcceptRead()) {
      h.Read(a * 64);
      reads++;
    }
    if (a % 3 == 0 && h.ctrl().CanAcceptWriteback()) h.Writeback(a * 64 + 1_MiB);
  }
  h.RunToIdle();
  EXPECT_EQ(h.completions.size(), reads);
}

TEST(Ideal, EveryReadIsOneHbmBurst) {
  ControllerHarness h(std::make_unique<IdealController>(SmallMemConfig()));
  h.Read(0x1000);
  h.Read(0x2000);
  h.RunToIdle();
  EXPECT_EQ(h.completions.size(), 2u);
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 2u);
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 0u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);
}

TEST(Ideal, WritebackCostsTagReadPlusDataWrite) {
  ControllerHarness h(std::make_unique<IdealController>(SmallMemConfig()));
  h.Writeback(0x3000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 1u);   // tag check
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 1u);  // data update
}

TEST(Ideal, TransfersMoreBytesThanNoHbmPerRead) {
  // The Fig. 2(a) effect: IDEAL moves tag sideband bytes on every access.
  ControllerHarness ideal(std::make_unique<IdealController>(SmallMemConfig()));
  ControllerHarness nohbm(std::make_unique<NoHbmController>(SmallMemConfig()));
  for (Addr a = 0; a < 32; ++a) {
    ideal.Read(a * 64);
    nohbm.Read(a * 64);
  }
  ideal.RunToIdle();
  nohbm.RunToIdle();
  EXPECT_GT(ideal.Stats().GetCounter("hbm.bytes_transferred"),
            nohbm.Stats().GetCounter("ddr4.bytes_transferred"));
}

}  // namespace
}  // namespace redcache
