#include "dramcache/tictoc.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

std::unique_ptr<TicTocController> MakeTicToc() {
  return std::make_unique<TicTocController>(SmallMemConfig());
}

TEST(TicToc, MissFillsLikeAlloyAtFullDuty) {
  ControllerHarness h(MakeTicToc());
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);  // duty starts at 8/8
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.bypassed_fills"), 0u);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(TicToc, HitPaysMetadataWriteAtHighDuty) {
  ControllerHarness h(MakeTicToc());
  h.Read(0x4000);
  h.RunToIdle();
  const auto hbm_writes_fill = h.Stats().GetCounter("hbm.write_bursts");
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.metadata_updates"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.metadata_skips"), 0u);
  // The reuse-counter update is a real modeled HBM write.
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), hbm_writes_fill + 1);
}

TEST(TicToc, WriteMissNeverAllocates) {
  ControllerHarness h(MakeTicToc());
  h.Writeback(0x9000);
  h.RunToIdle();
  h.Read(0x9000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.write_bypasses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 2u);  // the read missed too
  EXPECT_GE(s.GetCounter("ddr4.write_bursts"), 1u);
}

TEST(TicToc, EarlyWritesAbsorbedInCache) {
  ControllerHarness h(MakeTicToc());
  h.Read(0x4000);  // install; r_count = 0
  h.RunToIdle();
  h.Writeback(0x4000);  // below the last-write threshold
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.absorbed_writes"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.last_write_routes"), 0u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);
}

TEST(TicToc, ReusedLineRoutesLastWriteToMainMemory) {
  ControllerHarness h(MakeTicToc());
  h.Read(0x4000);  // install
  h.RunToIdle();
  for (int i = 0; i < 4; ++i) {  // hit reads push r_count to the threshold
    h.Read(0x4000);
    h.RunToIdle();
  }
  h.Writeback(0x4000);  // predicted last write
  h.RunToIdle();
  StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.last_write_routes"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.absorbed_writes"), 0u);
  EXPECT_GE(s.GetCounter("ddr4.write_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.resident_lines"), 0u);  // copy dropped

  h.Read(0x4000);  // the invalidated line must miss again
  h.RunToIdle();
  s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 2u);
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 0u);  // it left clean
}

TEST(TicToc, DutyDropsWhenHbmIsTheBottleneck) {
  ControllerHarness h(MakeTicToc());
  auto* tictoc = dynamic_cast<TicTocController*>(&h.ctrl());
  ASSERT_NE(tictoc, nullptr);
  EXPECT_EQ(tictoc->fill_duty(), 8u);

  // An all-hit loop moves HBM bursts only (probe + metadata), so each
  // 4096-request window votes to shed optional HBM traffic.
  h.Read(0x4000);
  h.RunToIdle();
  for (int i = 0; i < 4096; ++i) h.Read(0x4000);
  h.RunToIdle();
  EXPECT_LT(tictoc->fill_duty(), 8u);
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.fill_duty"), tictoc->fill_duty());
}

TEST(TicToc, LowDutySkipsFillsAndMetadata) {
  ControllerHarness h(MakeTicToc());
  auto* tictoc = dynamic_cast<TicTocController*>(&h.ctrl());
  // Drive the duty to the floor with pure-hit windows.
  h.Read(0x4000);
  h.RunToIdle();
  int i = 0;
  while (tictoc->fill_duty() > 1 && i < 8 * 4096) {
    h.Read(0x4000);
    ++i;
  }
  h.RunToIdle();
  ASSERT_EQ(tictoc->fill_duty(), 1u);

  const auto skips_before = h.Stats().GetCounter("ctrl.metadata_skips");
  h.Read(0x4000);
  h.RunToIdle();
  EXPECT_GT(h.Stats().GetCounter("ctrl.metadata_skips"), skips_before);

  // At duty 1/8 most conflicting read misses serve without installing.
  const auto fills_before = h.Stats().GetCounter("ctrl.fills");
  for (int j = 0; j < 8; ++j) {
    h.Read(0x4000 + 1_MiB);  // same set, different tag: guaranteed miss mix
    h.Read(0x4000 + 2_MiB);
    h.RunToIdle();
  }
  const StatSet s = h.Stats();
  EXPECT_GT(s.GetCounter("ctrl.bypassed_fills"), 0u);
  EXPECT_LT(s.GetCounter("ctrl.fills") - fills_before, 16u);
}

}  // namespace
}  // namespace redcache
