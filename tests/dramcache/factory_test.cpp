#include "dramcache/factory.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

TEST(Factory, AllArchesConstruct) {
  for (Arch a : {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
                 Arch::kRedAlpha, Arch::kRedGamma, Arch::kRedBasic,
                 Arch::kRedInSitu, Arch::kRedCache}) {
    auto ctrl = MakeController(a, SmallMemConfig());
    ASSERT_NE(ctrl, nullptr) << ToString(a);
    EXPECT_STRNE(ctrl->name(), "");
  }
}

TEST(Factory, NamesRoundTrip) {
  for (Arch a : {Arch::kNoHbm, Arch::kIdeal, Arch::kAlloy, Arch::kBear,
                 Arch::kRedAlpha, Arch::kRedGamma, Arch::kRedBasic,
                 Arch::kRedInSitu, Arch::kRedCache}) {
    EXPECT_EQ(ArchFromString(ToString(a)), a);
  }
  EXPECT_THROW(ArchFromString("bogus"), std::invalid_argument);
}

TEST(Factory, EvaluationListMatchesPaperFigures) {
  const auto& archs = EvaluationArchs();
  ASSERT_EQ(archs.size(), 7u);
  EXPECT_EQ(archs.front(), Arch::kAlloy);  // normalization baseline
  EXPECT_EQ(archs.back(), Arch::kRedCache);
}

TEST(Factory, EveryArchServesTrivialTraffic) {
  for (Arch a : EvaluationArchs()) {
    ControllerHarness h(MakeController(a, SmallMemConfig()));
    h.Read(0x1000);
    h.Writeback(0x2000);
    h.Read(0x1000);
    h.RunToIdle();
    EXPECT_EQ(h.completions.size(), 2u) << ToString(a);
  }
}

}  // namespace
}  // namespace redcache
