// Adaptation-focused tests: gamma premature-invalidation feedback, the
// write-fill exclusion in alpha's statistics, and RCU behaviour under load.
#include <gtest/gtest.h>

#include "controller_harness.hpp"
#include "dramcache/redcache.hpp"

namespace redcache {
namespace {

RedCacheOptions NoAlpha() {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha_enabled = false;
  o.bypass_on_refresh = false;
  return o;
}

std::unique_ptr<RedCacheController> Make(RedCacheOptions o) {
  return std::make_unique<RedCacheController>(SmallMemConfig(), o, "t");
}

TEST(RedCacheAdaptation, PrematureInvalidationRaisesGamma) {
  RedCacheOptions o = NoAlpha();
  o.gamma.initial_gamma = 4;
  o.gamma.min_gamma = 4;
  ControllerHarness h(Make(o));
  const Addr a = 0x4000;
  h.Read(a);
  h.RunToIdle();
  for (int i = 0; i < 4; ++i) {
    h.Read(a);
    h.RunToIdle();
  }
  h.Writeback(a);  // r >= gamma: invalidated as "last write"
  h.RunToIdle();
  ASSERT_EQ(h.Stats().GetCounter("ctrl.gamma_invalidations"), 1u);
  const auto gamma_before = h.Stats().GetCounter("ctrl.gamma_value");
  h.Read(a);  // the block was NOT dead: premature signal
  h.RunToIdle();
  EXPECT_GT(h.Stats().GetCounter("ctrl.gamma_value"), gamma_before);
  EXPECT_EQ(h.Stats().GetCounter("ctrl.gamma_premature"), 1u);
}

TEST(RedCacheAdaptation, NaturalEvictionFeedsLifetimeSamples) {
  RedCacheOptions o = NoAlpha();
  o.gamma.initial_gamma = 100;
  o.gamma.down_damping = 1;
  ControllerHarness h(Make(o));
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;  // same set
  // a gets 2 reuses, then b evicts it -> lifetime sample 2 < gamma.
  h.Read(a);
  h.RunToIdle();
  h.Read(a);
  h.Read(a);
  h.RunToIdle();
  h.Read(b);
  h.RunToIdle();
  EXPECT_LT(h.Stats().GetCounter("ctrl.gamma_value"), 100u);
}

TEST(RedCacheAdaptation, GammaInvalidationIsNotALifetimeSample) {
  RedCacheOptions o = NoAlpha();
  o.gamma.initial_gamma = 2;
  o.gamma.min_gamma = 2;
  o.gamma.down_damping = 1;
  ControllerHarness h(Make(o));
  const Addr a = 0x4000;
  h.Read(a);
  h.RunToIdle();
  h.Read(a);
  h.RunToIdle();
  h.Writeback(a);  // r=2 >= gamma -> truncated lifetime; must not sample
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.gamma_invalidations"), 1u);
  EXPECT_EQ(h.Stats().GetCounter("ctrl.gamma_value"), 2u);
}

TEST(RedCacheAdaptation, RcuUpdatesDeduplicatePerBlock) {
  ControllerHarness h(Make(NoAlpha()));
  const Addr a = 0x4000;
  h.Read(a);
  h.RunToIdle();
  // Two back-to-back hits on the same block: the second update lands in
  // the still-parked entry (no duplicate).
  h.Read(a);
  h.Read(a);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_GE(s.GetCounter("ctrl.rcu_inserts"), 2u);
  // No entry is flushed more than once, and in-place updates never create
  // duplicate entries (dedup itself is unit-tested in rcu_test).
  const auto flushes = s.GetCounter("ctrl.rcu_merged_flushes") +
                       s.GetCounter("ctrl.rcu_idle_flushes") +
                       s.GetCounter("ctrl.rcu_capacity_flushes");
  EXPECT_LE(flushes, s.GetCounter("ctrl.rcu_inserts"));
}

TEST(RedCacheAdaptation, RcuCapacityFlushUnderHitStorm) {
  ControllerHarness h(Make(NoAlpha()));
  // Warm 64 blocks, then hit them in a rotation faster than the channels
  // drain: the 32-entry queue must overflow via condition 3.
  for (int i = 0; i < 64; ++i) h.Read(0x40000 + i * kBlockBytes);
  h.RunToIdle();
  for (int i = 0; i < 1024; ++i) {
    h.Read(0x40000 + (i % 64) * kBlockBytes);
  }
  h.RunToIdle();
  EXPECT_GT(h.Stats().GetCounter("ctrl.rcu_capacity_flushes"), 0u);
}

TEST(RedCacheAdaptation, EveryParkedUpdateEventuallyWritten) {
  ControllerHarness h(Make(NoAlpha()));
  for (int i = 0; i < 32; ++i) h.Read(0x40000 + i * kBlockBytes);
  h.RunToIdle();
  for (int i = 0; i < 512; ++i) {
    h.Read(0x40000 + (i % 32) * kBlockBytes);
  }
  h.RunToIdle();
  const StatSet s = h.Stats();
  const auto flushed = s.GetCounter("ctrl.rcu_merged_flushes") +
                       s.GetCounter("ctrl.rcu_idle_flushes") +
                       s.GetCounter("ctrl.rcu_capacity_flushes");
  // inserts = new entries + in-place updates; when idle, nothing parked.
  EXPECT_GT(flushed, 0u);
  // Each flush became an HBM write (plus fills and the probe traffic).
  EXPECT_GE(s.GetCounter("hbm.write_bursts"), flushed);
}

TEST(RedCacheAdaptation, AlphaValueStaysInBounds) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha.min_alpha = 1;
  o.alpha.max_alpha = 3;
  o.epoch_requests = 256;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  for (Addr a = 0; a < 30000; ++a) {
    h.Read((a * 97 % 65536) * kBlockBytes);
  }
  h.RunToIdle();
  const auto alpha = h.Stats().GetCounter("ctrl.alpha_value");
  EXPECT_GE(alpha, 1u);
  EXPECT_LE(alpha, 3u);
}

}  // namespace
}  // namespace redcache
