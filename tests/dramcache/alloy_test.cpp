#include "dramcache/alloy.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

std::unique_ptr<AlloyController> MakeAlloy(std::uint32_t line_blocks = 1) {
  MemControllerConfig cfg = SmallMemConfig();
  cfg.line_blocks = line_blocks;
  return std::make_unique<AlloyController>(cfg);
}

TEST(Alloy, ColdReadMissesThenHits) {
  ControllerHarness h(MakeAlloy());
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(Alloy, MissPathTouchesBothDevices) {
  ControllerHarness h(MakeAlloy());
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 1u);   // probe
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 1u);  // fetch
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 1u);  // fill
}

TEST(Alloy, HitPathIsHbmOnly) {
  ControllerHarness h(MakeAlloy());
  h.Read(0x4000);
  h.RunToIdle();
  const auto ddr_before = h.Stats().GetCounter("ddr4.read_bursts");
  h.Read(0x4000);
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ddr4.read_bursts"), ddr_before);
}

TEST(Alloy, ConflictEvictsDirectMapped) {
  ControllerHarness h(MakeAlloy());
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;  // same set in the 1 MiB direct-mapped cache
  h.Read(a);
  h.RunToIdle();
  h.Read(b);
  h.RunToIdle();
  h.Read(a);  // conflict: must miss again
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_misses"), 3u);
}

TEST(Alloy, DirtyVictimWrittenBack) {
  ControllerHarness h(MakeAlloy());
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;
  h.Read(a);
  h.RunToIdle();
  h.Writeback(a);  // dirty the cached copy
  h.RunToIdle();
  h.Read(b);  // evicts dirty a
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 1u);
  EXPECT_GE(s.GetCounter("ddr4.write_bursts"), 1u);
}

TEST(Alloy, WriteHitUpdatesInPlace) {
  ControllerHarness h(MakeAlloy());
  h.Read(0x4000);
  h.RunToIdle();
  h.Writeback(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.write_hits"), 1u);
  // probe read + write, no main-memory traffic for the hit.
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);
}

TEST(Alloy, WriteMissAllocates) {
  ControllerHarness h(MakeAlloy());
  h.Writeback(0x9000);
  h.RunToIdle();
  h.Read(0x9000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits"), 1u);  // read found it cached
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);
}

TEST(Alloy, CoarseLinesFillMoreBursts) {
  ControllerHarness h(MakeAlloy(/*line_blocks=*/4));  // 256 B lines
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 4u);  // whole line fetched
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 4u);  // whole line filled
}

TEST(Alloy, CoarseLinesGiveSpatialHits) {
  ControllerHarness h(MakeAlloy(/*line_blocks=*/4));
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4040);  // neighbour block, same 256 B line
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits"), 1u);
}

TEST(Alloy, HitRateAccessorMatchesCounters) {
  ControllerHarness h(MakeAlloy());
  auto* alloy = dynamic_cast<AlloyController*>(&h.ctrl());
  h.Read(0x100);
  h.RunToIdle();
  h.Read(0x100);
  h.RunToIdle();
  EXPECT_DOUBLE_EQ(alloy->HitRate(), 0.5);
}

}  // namespace
}  // namespace redcache
