#include "dramcache/tag_store.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(DirectMappedTags, GeometryDerivation) {
  DirectMappedTags t(1_MiB, 1);
  EXPECT_EQ(t.num_sets(), 1_MiB / 64);
  EXPECT_EQ(t.line_bytes(), 64u);
  DirectMappedTags wide(1_MiB, 4);
  EXPECT_EQ(wide.num_sets(), 1_MiB / 256);
  EXPECT_EQ(wide.line_bytes(), 256u);
}

TEST(DirectMappedTags, SetWrapsAtCapacity) {
  DirectMappedTags t(1_MiB, 1);
  EXPECT_EQ(t.SetOf(0x40), t.SetOf(0x40 + 1_MiB));
  EXPECT_NE(t.TagOf(0x40), t.TagOf(0x40 + 1_MiB));
}

TEST(DirectMappedTags, HitRequiresValidAndMatchingTag) {
  DirectMappedTags t(1_MiB, 1);
  const Addr a = 0x12340;
  EXPECT_FALSE(t.Hit(a));
  auto& line = t.line(t.SetOf(a));
  line.valid = true;
  line.tag = t.TagOf(a);
  EXPECT_TRUE(t.Hit(a));
  EXPECT_FALSE(t.Hit(a + 1_MiB));  // same set, different tag
}

TEST(DirectMappedTags, VictimAddrRoundTrips) {
  DirectMappedTags t(1_MiB, 1);
  const Addr a = BlockAlign(0x735ac0);
  auto& line = t.line(t.SetOf(a));
  line.valid = true;
  line.tag = t.TagOf(a);
  EXPECT_EQ(t.VictimAddr(t.SetOf(a)), a);
}

TEST(DirectMappedTags, VictimAddrRoundTripsForWideLines) {
  DirectMappedTags t(1_MiB, 4);
  const Addr a = (0x735ac0 / 256) * 256;  // line aligned
  auto& line = t.line(t.SetOf(a));
  line.valid = true;
  line.tag = t.TagOf(a);
  EXPECT_EQ(t.VictimAddr(t.SetOf(a)), a);
}

TEST(DirectMappedTags, HbmAddrStaysInsideDevice) {
  DirectMappedTags t(1_MiB, 4);
  for (Addr a = 0; a < 8_MiB; a += 4096 + 192) {
    EXPECT_LT(t.HbmAddr(t.SetOf(a), a), 1_MiB);
  }
}

TEST(DirectMappedTags, HbmAddrSelectsRequestedBlockWithinLine) {
  DirectMappedTags t(1_MiB, 4);
  const Addr line_base = 0x100;  // not line aligned -> block 1 of its line
  const Addr hbm0 = t.HbmAddr(t.SetOf(line_base), line_base & ~Addr{255});
  const Addr hbm1 = t.HbmAddr(t.SetOf(line_base), line_base);
  EXPECT_EQ(hbm1 - hbm0, 0x100u & 0xffu);
}

TEST(DirectMappedTags, BumpRcountSaturates) {
  DirectMappedTags t(64_KiB, 1);
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t v = t.BumpRcount(3);
    EXPECT_LE(v, 255u);
  }
  EXPECT_EQ(t.line(3).r_count, 255);
}

}  // namespace
}  // namespace redcache
