// Tests for the extension controllers: the set-associative RedCache and
// the coarse-grained footprint cache baseline.
#include <gtest/gtest.h>

#include "controller_harness.hpp"
#include "dramcache/assoc_redcache.hpp"
#include "dramcache/footprint.hpp"

namespace redcache {
namespace {

RedCacheOptions PlainOptions() {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha_enabled = false;
  o.gamma_enabled = false;
  o.bypass_on_refresh = false;
  o.update_mode = RedCacheOptions::UpdateMode::kInSitu;
  return o;
}

std::unique_ptr<AssocRedCacheController> MakeAssoc(std::uint32_t ways,
                                                   RedCacheOptions o) {
  return std::make_unique<AssocRedCacheController>(SmallMemConfig(), o, ways);
}

// --- Associative RedCache ---------------------------------------------------

TEST(AssocRedCache, MissFillThenHit) {
  ControllerHarness h(MakeAssoc(2, PlainOptions()));
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits"), 1u);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(AssocRedCache, TwoWaysHoldConflictingBlocks) {
  // 1 MiB 2-way: sets = 8192; addresses 1 MiB/2 apart share a set.
  ControllerHarness h(MakeAssoc(2, PlainOptions()));
  const Addr a = 0x4000;
  const Addr b = a + 512_KiB;
  const Addr c = a + 1_MiB;
  h.Read(a);
  h.RunToIdle();
  h.Read(b);
  h.RunToIdle();
  h.Read(a);  // still resident: 2 ways
  h.Read(b);
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits"), 2u);
  h.Read(c);  // evicts the LRU way
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.fills"), 3u);
}

TEST(AssocRedCache, DirectMappedDegeneratesToConflicts) {
  ControllerHarness h(MakeAssoc(1, PlainOptions()));
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;  // same set when ways=1
  h.Read(a);
  h.RunToIdle();
  h.Read(b);
  h.RunToIdle();
  h.Read(a);
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_misses"), 3u);
}

TEST(AssocRedCache, NonMruHitCostsExtraBurst) {
  ControllerHarness h(MakeAssoc(2, PlainOptions()));
  const Addr a = 0x4000;
  const Addr b = a + 512_KiB;  // same set, other way
  h.Read(a);
  h.RunToIdle();
  h.Read(b);
  h.RunToIdle();
  // b is now MRU; reading a hits the non-MRU way -> extra data burst.
  const auto reads_before = h.Stats().GetCounter("hbm.read_bursts");
  h.Read(a);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.non_mru_hits"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), reads_before + 2);
}

TEST(AssocRedCache, MruHitServedByProbeAlone) {
  ControllerHarness h(MakeAssoc(2, PlainOptions()));
  h.Read(0x4000);
  h.RunToIdle();
  const auto reads_before = h.Stats().GetCounter("hbm.read_bursts");
  h.Read(0x4000);  // MRU hit
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.mru_hits"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), reads_before + 1);
}

TEST(AssocRedCache, DirtyVictimWrittenBack) {
  ControllerHarness h(MakeAssoc(1, PlainOptions()));
  const Addr a = 0x4000;
  h.Read(a);
  h.RunToIdle();
  h.Writeback(a);  // dirty the resident
  h.RunToIdle();
  h.Read(a + 1_MiB);  // evicts dirty a
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 1u);
  EXPECT_GE(s.GetCounter("ddr4.write_bursts"), 1u);
}

TEST(AssocRedCache, AlphaBypassStillApplies) {
  RedCacheOptions o = PlainOptions();
  o.alpha_enabled = true;
  o.alpha.initial_alpha = 4;
  o.alpha.adaptive = false;
  ControllerHarness h(MakeAssoc(2, o));
  h.Read(0x9000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.alpha_bypasses"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 0u);
}

TEST(AssocRedCache, HigherAssociativityRaisesHitRateUnderConflicts) {
  auto run = [](std::uint32_t ways) {
    ControllerHarness h(MakeAssoc(ways, PlainOptions()));
    // Four streams aliasing to the same sets of a 1 MiB cache.
    for (int round = 0; round < 6; ++round) {
      for (Addr s = 0; s < 4; ++s) {
        for (Addr b = 0; b < 32; ++b) {
          h.Read(0x40000 + s * 1_MiB + b * kBlockBytes);
        }
      }
    }
    h.RunToIdle();
    return h.Stats().GetCounter("ctrl.cache_hits");
  };
  EXPECT_GT(run(4), run(1));
}

// --- Footprint (coarse-grained) cache ---------------------------------------

std::unique_ptr<FootprintCacheController> MakeFootprint() {
  return std::make_unique<FootprintCacheController>(SmallMemConfig(), 2048);
}

TEST(FootprintCache, FetchesOnlyDemandedBlocks) {
  ControllerHarness h(MakeFootprint());
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 1u);  // one block, not a page
}

TEST(FootprintCache, NoProbeTrafficOnHits) {
  ControllerHarness h(MakeFootprint());
  h.Read(0x4000);
  h.RunToIdle();
  const auto hbm_reads = h.Stats().GetCounter("hbm.read_bursts");
  h.Read(0x4000);  // block hit: single HBM data read, no tag probe
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("hbm.read_bursts"), hbm_reads + 1);
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits"), 1u);
}

TEST(FootprintCache, NeighbourBlockIsAPageHitButBlockMiss) {
  ControllerHarness h(MakeFootprint());
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4040);  // same 2 KiB page, different block
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.block_misses"), 2u);
}

TEST(FootprintCache, EvictionWritesBackOnlyDirtyBlocks) {
  ControllerHarness h(MakeFootprint());
  const Addr page = 0x4000;
  h.Read(page);
  h.Read(page + 64);
  h.RunToIdle();
  h.Writeback(page + 64);  // one dirty block
  h.RunToIdle();
  // 1 MiB / 2 KiB pages = 512 sets; conflict stride 1 MiB.
  h.Read(page + 1_MiB);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.page_evictions"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.dirty_blocks_written_back"), 1u);
}

TEST(FootprintCache, WritebackInstallsWithoutFetch) {
  ControllerHarness h(MakeFootprint());
  h.Writeback(0x8000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 0u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 1u);
}

TEST(FootprintCache, ServesMixedTrafficToCompletion) {
  ControllerHarness h(MakeFootprint());
  std::size_t reads = 0;
  for (Addr a = 0; a < 3000; ++a) {
    const Addr addr = (a * 977) % (4_MiB / 64) * 64;
    if (a % 3 == 0) {
      h.Writeback(addr);
    } else {
      h.Read(addr);
      reads++;
    }
  }
  h.RunToIdle();
  EXPECT_EQ(h.completions.size(), reads);
}

}  // namespace
}  // namespace redcache
