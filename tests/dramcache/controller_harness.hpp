// Shared helpers for driving a MemController directly in unit tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dramcache/controller.hpp"
#include "sim/presets.hpp"

namespace redcache {

/// A small configuration so set conflicts are easy to construct: 1 MiB HBM
/// cache (16384 sets at 64 B), 64 MiB main memory.
inline MemControllerConfig SmallMemConfig() {
  MemControllerConfig cfg;
  cfg.hbm = HbmCacheConfig(1_MiB);
  cfg.mainmem = MainMemoryConfig(64_MiB);
  return cfg;
}

class ControllerHarness {
 public:
  explicit ControllerHarness(std::unique_ptr<MemController> ctrl)
      : ctrl_(std::move(ctrl)) {}

  /// Submit a demand read (ticking through backpressure); returns the tag.
  std::uint64_t Read(Addr addr) {
    WaitFor([&] { return ctrl_->CanAcceptRead(); });
    const std::uint64_t tag = next_tag_++;
    EXPECT_TRUE(ctrl_->CanAcceptRead());
    ctrl_->SubmitRead(addr, tag, now_);
    return tag;
  }

  void Writeback(Addr addr) {
    WaitFor([&] { return ctrl_->CanAcceptWriteback(); });
    EXPECT_TRUE(ctrl_->CanAcceptWriteback());
    ctrl_->SubmitWriteback(addr, now_);
  }

  /// Tick until `cond()` holds (bounded).
  template <typename Cond>
  void WaitFor(Cond cond, Cycle limit = 5000000) {
    const Cycle end = now_ + limit;
    while (!cond() && now_ < end) {
      ctrl_->Tick(now_);
      auto& c = ctrl_->read_completions();
      completions.insert(completions.end(), c.begin(), c.end());
      c.clear();
      now_ = std::max(now_ + 1, ctrl_->NextEventHint(now_));
    }
  }

  /// Tick until the controller is fully idle; collects read completions.
  void RunToIdle(Cycle limit = 5000000) {
    const Cycle end = now_ + limit;
    while (!ctrl_->Idle() && now_ < end) {
      ctrl_->Tick(now_);
      auto& c = ctrl_->read_completions();
      completions.insert(completions.end(), c.begin(), c.end());
      c.clear();
      now_ = std::max(now_ + 1, ctrl_->NextEventHint(now_));
    }
    ASSERT_TRUE(ctrl_->Idle()) << "controller failed to drain";
  }

  /// Blocks until at least `n` read completions arrived.
  void RunUntilCompletions(std::size_t n, Cycle limit = 5000000) {
    const Cycle end = now_ + limit;
    while (completions.size() < n && now_ < end) {
      ctrl_->Tick(now_);
      auto& c = ctrl_->read_completions();
      completions.insert(completions.end(), c.begin(), c.end());
      c.clear();
      now_ = std::max(now_ + 1, ctrl_->NextEventHint(now_));
    }
    ASSERT_GE(completions.size(), n);
  }

  StatSet Stats() const {
    StatSet s;
    ctrl_->ExportStats(s);
    return s;
  }

  MemController& ctrl() { return *ctrl_; }
  Cycle now() const { return now_; }

  std::vector<ReadCompletion> completions;

 private:
  std::unique_ptr<MemController> ctrl_;
  Cycle now_ = 0;
  std::uint64_t next_tag_ = 1;
};

}  // namespace redcache
