// Validates the Fig. 7 operation flow of the RedCache controller:
// alpha bypass, probe/hit/miss paths, gamma last-write invalidation,
// dirty-miss write bypass, the RCU update modes and bypass-on-refresh.
#include "dramcache/redcache.hpp"

#include <gtest/gtest.h>

#include "controller_harness.hpp"

namespace redcache {
namespace {

RedCacheOptions NoAlphaOptions() {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha_enabled = false;  // every request may use the cache
  o.bypass_on_refresh = false;
  return o;
}

std::unique_ptr<RedCacheController> Make(RedCacheOptions o,
                                         const char* name = "test") {
  return std::make_unique<RedCacheController>(SmallMemConfig(), o, name);
}

// --- Alpha counting ---------------------------------------------------------

TEST(RedCacheFlow, ColdPageBypassesToMainMemory) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha.initial_alpha = 1;
  o.alpha.adaptive = false;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.alpha_bypasses"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.read_bursts"), 0u);  // never probed
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 1u);
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(RedCacheFlow, PageQualifiesAfterEnoughTraffic) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha.initial_alpha = 1;
  o.alpha.adaptive = false;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  // 64 accesses to one page qualify it (alpha=1 average per block).
  for (std::uint32_t i = 0; i < kBlocksPerPage; ++i) {
    h.Read(0x10000 + i * kBlockBytes);
    h.RunToIdle();
  }
  const auto probes_before = h.Stats().GetCounter("hbm.read_bursts");
  EXPECT_GT(probes_before, 0u);  // the qualifying access already probes
  h.Read(0x10000);
  h.RunToIdle();
  EXPECT_GT(h.Stats().GetCounter("hbm.read_bursts"), probes_before);
}

TEST(RedCacheFlow, ColdWritebackRoutedOffPackage) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha.initial_alpha = 4;
  o.alpha.adaptive = false;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  h.Writeback(0x20000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), 0u);
}

// --- Probe / hit / miss paths ----------------------------------------------

TEST(RedCacheFlow, MissFillsThenHits) {
  ControllerHarness h(Make(NoAlphaOptions()));
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.cache_misses"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);
}

TEST(RedCacheFlow, WriteMissOnCleanSetInstalls) {
  // Fig. 7: a write miss with no dirty resident installs the block (the
  // CPU supplied the data, so no main-memory fetch is needed).
  ControllerHarness h(Make(NoAlphaOptions()));
  h.Writeback(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.fills"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.read_bursts"), 0u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);
  h.Read(0x4000);
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits"), 1u);
}

TEST(RedCacheFlow, DirtyResidentWriteMissCounted) {
  ControllerHarness h(Make(NoAlphaOptions()));
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;  // same direct-mapped set
  h.Read(a);       // fill a
  h.RunToIdle();
  h.Writeback(a);  // write hit -> a dirty in cache
  h.RunToIdle();
  h.Writeback(b);  // write miss with dirty resident -> bypass, a survives
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.dirty_miss_bypasses"), 1u);
  h.Read(a);  // the dirty resident is still cached
  h.RunToIdle();
  EXPECT_EQ(h.Stats().GetCounter("ctrl.cache_hits") -
                s.GetCounter("ctrl.cache_hits"),
            1u);
}

TEST(RedCacheFlow, ReadMissEvictsDirtyVictim) {
  ControllerHarness h(Make(NoAlphaOptions()));
  const Addr a = 0x4000;
  const Addr b = a + 1_MiB;
  h.Read(a);       // fill
  h.RunToIdle();
  h.Writeback(a);  // write hit -> dirty resident
  h.RunToIdle();
  const auto wr_before = h.Stats().GetCounter("ddr4.write_bursts");
  h.Read(b);  // read miss: fill b, write back dirty a
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.victim_writebacks"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), wr_before + 1);
}

// --- Gamma counting ---------------------------------------------------------

TEST(RedCacheFlow, LastWriteInvalidatesAndGoesOffPackage) {
  RedCacheOptions o = NoAlphaOptions();
  o.gamma.initial_gamma = 1;  // any reused block's next write is "last"
  ControllerHarness h(Make(o));
  h.Read(0x4000);  // fill (r=0)
  h.RunToIdle();
  h.Read(0x4000);  // hit (r=1)
  h.RunToIdle();
  const auto hbm_writes_before = h.Stats().GetCounter("hbm.write_bursts");
  h.Writeback(0x4000);  // r=2 >= gamma -> invalidate, route to DDR4
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.gamma_invalidations"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), hbm_writes_before);
  // The block is gone: next read misses.
  h.Read(0x4000);
  h.RunToIdle();
  EXPECT_EQ(s.GetCounter("ctrl.cache_hits") + 1,
            h.Stats().GetCounter("ctrl.cache_hits") +
                (h.Stats().GetCounter("ctrl.cache_misses") -
                 s.GetCounter("ctrl.cache_misses")));
}

TEST(RedCacheFlow, YoungBlockWriteStaysInCache) {
  RedCacheOptions o = NoAlphaOptions();
  o.gamma.initial_gamma = 100;
  ControllerHarness h(Make(o));
  h.Read(0x4000);
  h.RunToIdle();
  h.Writeback(0x4000);  // r=1 < gamma: normal write hit
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.gamma_invalidations"), 0u);
  EXPECT_EQ(s.GetCounter("ctrl.write_hits"), 1u);
  EXPECT_EQ(s.GetCounter("ddr4.write_bursts"), 0u);
}

TEST(RedCacheFlow, GammaDisabledNeverInvalidates) {
  RedCacheOptions o = RedCacheOptions::AlphaOnly();
  o.alpha.initial_alpha = 1;
  o.alpha.adaptive = false;
  ControllerHarness h(Make(o));
  // Qualify the page, then hammer writes: no gamma invalidations ever.
  for (std::uint32_t i = 0; i < 2 * kBlocksPerPage; ++i) {
    h.Read(0x10000 + (i % kBlocksPerPage) * kBlockBytes);
    h.RunToIdle();
  }
  for (int i = 0; i < 8; ++i) {
    h.Writeback(0x10000);
    h.RunToIdle();
  }
  EXPECT_EQ(h.Stats().GetCounter("ctrl.gamma_invalidations"), 0u);
}

// --- r-count update modes ---------------------------------------------------

TEST(RedCacheFlow, ImmediateModeWritesUpdatePerReadHit) {
  RedCacheOptions o = RedCacheOptions::Basic();
  o.alpha_enabled = false;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  h.Read(0x4000);
  h.RunToIdle();
  const auto w0 = h.Stats().GetCounter("hbm.write_bursts");
  h.Read(0x4000);  // read hit -> immediate r-count write
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.immediate_updates"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), w0 + 1);
}

TEST(RedCacheFlow, InSituModeHasNoUpdateTraffic) {
  RedCacheOptions o = RedCacheOptions::InSitu();
  o.alpha_enabled = false;
  o.bypass_on_refresh = false;
  ControllerHarness h(Make(o));
  h.Read(0x4000);
  h.RunToIdle();
  const auto w0 = h.Stats().GetCounter("hbm.write_bursts");
  h.Read(0x4000);
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.insitu_updates"), 1u);
  EXPECT_EQ(s.GetCounter("hbm.write_bursts"), w0);
}

TEST(RedCacheFlow, RcuModeParksAndDrainsUpdates) {
  ControllerHarness h(Make(NoAlphaOptions()));
  h.Read(0x4000);
  h.RunToIdle();
  h.Read(0x4040);  // second block: fill
  h.RunToIdle();
  h.Read(0x4000);  // read hit -> parked in RCU
  h.RunToIdle();   // queue goes idle -> condition 2 drains it
  const StatSet s = h.Stats();
  EXPECT_EQ(s.GetCounter("ctrl.rcu_inserts"), 1u);
  EXPECT_EQ(s.GetCounter("ctrl.rcu_idle_flushes") +
                s.GetCounter("ctrl.rcu_merged_flushes") +
                s.GetCounter("ctrl.rcu_capacity_flushes"),
            1u);
}

TEST(RedCacheFlow, RcuServesRepeatReadsAsBlockCache) {
  // RCU entries only linger while their channel stays busy (an idle channel
  // drains them — condition 2), so repeat reads must arrive under load.
  ControllerHarness h(Make(NoAlphaOptions()));
  constexpr int kBlocks = 64;
  for (int i = 0; i < kBlocks; ++i) {
    h.Read(0x40000 + i * kBlockBytes);  // warm fills
  }
  h.RunToIdle();
  std::size_t reads = 0;
  for (int i = 0; i < 3000; ++i) {
    h.Read(0x40000 + (i % kBlocks) * kBlockBytes);  // hot repeats under load
    reads++;
  }
  h.RunToIdle();
  const StatSet s = h.Stats();
  EXPECT_GE(s.GetCounter("ctrl.rcu_served_reads"), 1u);
  EXPECT_EQ(h.completions.size(), reads + kBlocks);
}

// --- Bypass-on-refresh ------------------------------------------------------

TEST(RedCacheFlow, RefreshWindowsBypassEventually) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha_enabled = false;
  ControllerHarness h(Make(o));
  // Keep issuing reads across several refresh intervals; some must land in
  // a refresh window and bypass.
  const Cycle refi = SmallMemConfig().hbm.timing.tREFI;
  std::size_t reads = 0;
  while (h.now() < 4 * refi) {
    h.Read((reads % 512) * kBlockBytes);
    reads++;
    h.RunUntilCompletions(reads);
  }
  EXPECT_GT(h.Stats().GetCounter("ctrl.refresh_bypasses"), 0u);
}

// --- Alpha adaptation -------------------------------------------------------

TEST(RedCacheFlow, AlphaRisesUnderUselessFills) {
  RedCacheOptions o = RedCacheOptions::Full();
  o.alpha.initial_alpha = 1;
  o.alpha.adaptive = true;
  o.bypass_on_refresh = false;
  o.epoch_requests = 512;
  ControllerHarness h(Make(o));
  // Streaming misses: blocks fill and are evicted without reuse.
  for (Addr a = 0; a < 20000; ++a) {
    h.Read(a * kBlockBytes);
  }
  h.RunToIdle();
  EXPECT_GT(h.Stats().GetCounter("ctrl.alpha_value"), 1u);
}

}  // namespace
}  // namespace redcache
