#include "dramcache/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "controller_harness.hpp"
#include "dramcache/factory.hpp"

namespace redcache {
namespace {

bool Contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

TEST(PolicyRegistry, AllBuiltinsRegistered) {
  const auto names = PolicyRegistry::Instance().Names();
  for (const char* expected :
       {"No-HBM", "IDEAL", "Alloy", "Bear", "Red-Alpha", "Red-Gamma",
        "Red-Basic", "Red-InSitu", "RedCache", "RedCache-2way",
        "RedCache-4way", "RedCache-8way", "Footprint-2KB", "Banshee",
        "TicToc"}) {
    EXPECT_TRUE(Contains(names, expected)) << expected << " not registered";
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistry, EveryRegisteredPolicyServesTrivialTraffic) {
  for (const std::string& name : PolicyRegistry::Instance().Names()) {
    ControllerHarness h(MakePolicy(name, SmallMemConfig()));
    EXPECT_STRNE(h.ctrl().name(), "") << name;
    h.Read(0x1000);
    h.Writeback(0x2000);
    h.Read(0x1000);
    h.RunToIdle();
    EXPECT_EQ(h.completions.size(), 2u) << name;
  }
}

TEST(PolicyRegistry, UnknownNameErrorListsEveryPolicy) {
  try {
    MakePolicy("bogus-policy", SmallMemConfig());
    FAIL() << "unknown policy name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus-policy"), std::string::npos) << msg;
    for (const std::string& name : PolicyRegistry::Instance().Names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error message omits registered policy " << name << ": " << msg;
    }
  }
}

TEST(PolicyRegistry, DuplicateRegistrationRejected) {
  PolicyInfo dup;
  dup.name = "Alloy";  // already taken by the builtin
  dup.make = [](const MemControllerConfig& cfg) {
    return MakePolicy("Alloy", cfg);
  };
  EXPECT_THROW(PolicyRegistry::Instance().Register(dup),
               std::invalid_argument);
}

TEST(PolicyRegistry, InvalidInfosRejected) {
  PolicyInfo no_factory;
  no_factory.name = "test-only-no-factory";
  EXPECT_THROW(PolicyRegistry::Instance().Register(no_factory),
               std::invalid_argument);

  PolicyInfo no_name;
  no_name.make = [](const MemControllerConfig& cfg) {
    return MakePolicy("Alloy", cfg);
  };
  EXPECT_THROW(PolicyRegistry::Instance().Register(no_name),
               std::invalid_argument);
}

TEST(PolicyRegistry, CapabilitySetsAreConsistentSubsets) {
  const auto& reg = PolicyRegistry::Instance();
  const auto names = reg.Names();
  for (const auto& subset :
       {reg.DifferentialNames(), reg.GoldenNames(), reg.SweepNames()}) {
    EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
    for (const std::string& n : subset) {
      EXPECT_TRUE(Contains(names, n)) << n;
    }
  }
  // Golden pinning without differential coverage would let a policy drift
  // from the reference model while still matching its own stale numbers.
  for (const std::string& n : reg.GoldenNames()) {
    EXPECT_TRUE(Contains(reg.DifferentialNames(), n))
        << n << " is golden-pinned but not differentially checked";
  }
}

TEST(PolicyRegistry, RivalFamiliesAreFullyEnrolled) {
  const auto& reg = PolicyRegistry::Instance();
  for (const char* rival : {"Banshee", "TicToc"}) {
    const PolicyInfo info = reg.Get(rival);
    EXPECT_TRUE(info.differential) << rival;
    EXPECT_TRUE(info.golden) << rival;
    EXPECT_TRUE(info.sweep) << rival;
    EXPECT_FALSE(info.summary.empty()) << rival;
  }
}

TEST(PolicyRegistry, ArchFactoryDelegatesToRegistry) {
  for (Arch a : EvaluationArchs()) {
    auto via_arch = MakeController(a, SmallMemConfig());
    auto via_name = MakePolicy(ToString(a), SmallMemConfig());
    ASSERT_NE(via_arch, nullptr);
    ASSERT_NE(via_name, nullptr);
    EXPECT_STREQ(via_arch->name(), via_name->name()) << ToString(a);
  }
}

}  // namespace
}  // namespace redcache
