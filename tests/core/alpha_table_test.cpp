#include "core/alpha_table.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

AlphaTable::Params Fixed(std::uint32_t alpha) {
  AlphaTable::Params p;
  p.initial_alpha = alpha;
  p.adaptive = false;
  return p;
}

TEST(AlphaTable, PageQualifiesAfterAlphaTimesBlocksAccesses) {
  AlphaTable t(Fixed(1));
  // alpha = 1 average reuse => 64 accesses to the page before qualifying.
  for (std::uint32_t i = 0; i + 1 < kBlocksPerPage; ++i) {
    EXPECT_FALSE(t.OnRequest(i * kBlockBytes)) << "access " << i;
  }
  EXPECT_TRUE(t.OnRequest(0));  // the 64th access qualifies
  EXPECT_TRUE(t.OnRequest(64));  // and stays hot
  EXPECT_EQ(t.pages_hot(), 1u);
}

TEST(AlphaTable, PagesIndependent) {
  AlphaTable t(Fixed(1));
  for (std::uint32_t i = 0; i < kBlocksPerPage; ++i) {
    (void)t.OnRequest(0);
  }
  EXPECT_TRUE(t.IsHot(0));
  EXPECT_FALSE(t.IsHot(kPageBytes));  // untouched page stays cold
  EXPECT_EQ(t.pages_tracked(), 1u);
}

TEST(AlphaTable, HigherAlphaNeedsMoreAccesses) {
  AlphaTable t(Fixed(2));
  for (std::uint32_t i = 0; i < kBlocksPerPage; ++i) {
    EXPECT_FALSE(t.OnRequest(0));
  }
  for (std::uint32_t i = 0; i + 1 < kBlocksPerPage; ++i) {
    EXPECT_FALSE(t.OnRequest(0));
  }
  EXPECT_TRUE(t.OnRequest(0));
}

TEST(AlphaTable, LoweringAlphaTakesEffectOnTrackedPages) {
  AlphaTable t(Fixed(4));
  (void)t.OnRequest(0);  // page tracked with count ~ 4*64
  t.SetAlpha(1);
  // Lazy clamp: the next accesses count against alpha=1 (64 total).
  bool hot = false;
  for (std::uint32_t i = 0; i < kBlocksPerPage && !hot; ++i) {
    hot = t.OnRequest(0);
  }
  EXPECT_TRUE(hot);
}

TEST(AlphaTable, RetuneMovesAlphaWithinBounds) {
  AlphaTable::Params p;
  p.initial_alpha = 2;
  p.min_alpha = 1;
  p.max_alpha = 4;
  p.adaptive = true;
  AlphaTable t(p);
  t.Retune(/*dead_fill_fraction=*/0.9);  // wasted fills -> alpha up
  EXPECT_EQ(t.alpha(), 3u);
  t.Retune(0.9);
  t.Retune(0.9);
  t.Retune(0.9);
  EXPECT_EQ(t.alpha(), 4u);  // clamped at max
  t.Retune(/*dead_fill_fraction=*/0.0);  // fills pay off -> alpha down
  EXPECT_EQ(t.alpha(), 3u);
  // Only moves that changed alpha count (2->3, 3->4; clamped calls do not).
  EXPECT_EQ(t.retunes_up(), 2u);
  EXPECT_EQ(t.retunes_down(), 1u);
}

TEST(AlphaTable, RetuneIgnoredWhenNotAdaptive) {
  AlphaTable t(Fixed(2));
  t.Retune(0.9);
  EXPECT_EQ(t.alpha(), 2u);
}

TEST(AlphaTable, MidWasteLeavesAlphaAlone) {
  AlphaTable::Params p;
  p.adaptive = true;
  p.initial_alpha = 2;
  AlphaTable t(p);
  t.Retune(0.5);  // inside the target band
  EXPECT_EQ(t.alpha(), 2u);
}

TEST(AlphaTable, BufferMissesCounted) {
  AlphaTable::Params p = Fixed(1);
  p.buffer_entries = 16;
  AlphaTable t(p);
  // Touch far more pages than buffer entries: misses must accumulate.
  for (Addr page = 0; page < 64; ++page) {
    (void)t.OnRequest(page * kPageBytes);
  }
  EXPECT_GT(t.buffer_misses(), 16u);
  EXPECT_EQ(t.lookups(), 64u);
}

TEST(AlphaTable, AlphaZeroIsImmediatelyHot) {
  AlphaTable::Params p = Fixed(1);
  p.min_alpha = 0;
  p.initial_alpha = 0;
  AlphaTable t(p);
  EXPECT_TRUE(t.OnRequest(0x123000));
}

}  // namespace
}  // namespace redcache
