#include "core/rcu.hpp"

#include <gtest/gtest.h>

namespace redcache {
namespace {

DramAddress Loc(std::uint32_t ch, std::uint32_t bank, std::uint64_t row) {
  return {.channel = ch, .rank = 0, .bank = bank, .row = row, .column = 0};
}

TEST(Rcu, InsertAndContains) {
  RcuManager rcu(4);
  EXPECT_TRUE(rcu.Insert(0x1000, Loc(0, 0, 1)).empty());
  EXPECT_TRUE(rcu.Contains(0x1000));
  EXPECT_FALSE(rcu.Contains(0x2000));
  EXPECT_EQ(rcu.block_hits(), 1u);
  EXPECT_EQ(rcu.searches(), 2u);
}

TEST(Rcu, DuplicateInsertUpdatesInPlace) {
  RcuManager rcu(4);
  (void)rcu.Insert(0x1000, Loc(0, 0, 1));
  EXPECT_TRUE(rcu.Insert(0x1000, Loc(0, 0, 1)).empty());
  EXPECT_EQ(rcu.size(), 1u);
  EXPECT_EQ(rcu.updates_in_place(), 1u);
}

TEST(Rcu, CapacityEvictsOldest) {
  RcuManager rcu(2);
  (void)rcu.Insert(0xa, Loc(0, 0, 1));
  (void)rcu.Insert(0xb, Loc(0, 0, 2));
  const auto evicted = rcu.Insert(0xc, Loc(0, 0, 3));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].block, 0xau);
  EXPECT_EQ(rcu.capacity_flushes(), 1u);
  EXPECT_EQ(rcu.size(), 2u);
}

TEST(Rcu, MatchIndexPopsSameRowOnly) {
  RcuManager rcu(8);
  (void)rcu.Insert(0x1, Loc(0, 1, 7));
  (void)rcu.Insert(0x2, Loc(0, 1, 7));
  (void)rcu.Insert(0x3, Loc(0, 1, 8));   // other row
  (void)rcu.Insert(0x4, Loc(1, 1, 7));   // other channel
  const auto matched = rcu.MatchIndex(Loc(0, 1, 7));
  EXPECT_EQ(matched.size(), 2u);
  EXPECT_EQ(rcu.size(), 2u);
  EXPECT_EQ(rcu.merged_flushes(), 2u);
}

TEST(Rcu, PopChannelDrainsOnlyThatChannel) {
  RcuManager rcu(8);
  (void)rcu.Insert(0x1, Loc(0, 0, 1));
  (void)rcu.Insert(0x2, Loc(1, 0, 1));
  (void)rcu.Insert(0x3, Loc(0, 2, 9));
  const auto popped = rcu.PopChannel(0);
  EXPECT_EQ(popped.size(), 2u);
  EXPECT_EQ(rcu.size(), 1u);
  EXPECT_TRUE(rcu.Contains(0x2));
  EXPECT_EQ(rcu.idle_flushes(), 2u);
}

TEST(Rcu, RemoveDropsEntry) {
  RcuManager rcu(4);
  (void)rcu.Insert(0x5, Loc(0, 0, 1));
  rcu.Remove(0x5);
  EXPECT_FALSE(rcu.Contains(0x5));
  rcu.Remove(0x5);  // idempotent
  EXPECT_EQ(rcu.size(), 0u);
}

TEST(Rcu, PopAllEmptiesQueue) {
  RcuManager rcu(8);
  for (Addr a = 0; a < 5; ++a) (void)rcu.Insert(a * 64, Loc(0, 0, a));
  EXPECT_EQ(rcu.PopAll().size(), 5u);
  EXPECT_EQ(rcu.size(), 0u);
}

TEST(Rcu, CapacityZeroForceFlushesEveryInsert) {
  RcuManager rcu(0);
  EXPECT_TRUE(rcu.full());
  const auto evicted = rcu.Insert(0x40, Loc(0, 0, 1));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].block, 0x40u);
  EXPECT_EQ(rcu.size(), 0u);
  EXPECT_FALSE(rcu.Contains(0x40));
  EXPECT_EQ(rcu.capacity_flushes(), 1u);
  // Stays degenerate on repeat.
  EXPECT_EQ(rcu.Insert(0x80, Loc(0, 0, 2)).size(), 1u);
  EXPECT_EQ(rcu.capacity_flushes(), 2u);
}

TEST(Rcu, CapacityOneEvictsOnEverySecondInsert) {
  RcuManager rcu(1);
  EXPECT_TRUE(rcu.Insert(0xa, Loc(0, 0, 1)).empty());
  const auto evicted = rcu.Insert(0xb, Loc(0, 0, 2));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].block, 0xau);
  EXPECT_EQ(rcu.size(), 1u);
  EXPECT_TRUE(rcu.Contains(0xb));
}

TEST(Rcu, ForceFlushOrderIsFifo) {
  RcuManager rcu(2);
  (void)rcu.Insert(0x1, Loc(0, 0, 1));
  (void)rcu.Insert(0x2, Loc(0, 0, 2));
  const auto first = rcu.Insert(0x3, Loc(0, 0, 3));
  const auto second = rcu.Insert(0x4, Loc(0, 0, 4));
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].block, 0x1u);   // oldest leaves first
  EXPECT_EQ(second[0].block, 0x2u);
}

TEST(Rcu, ContainsIsFalseAfterCapacityEviction) {
  RcuManager rcu(1);
  (void)rcu.Insert(0x100, Loc(0, 0, 1));
  (void)rcu.Insert(0x200, Loc(0, 0, 2));
  EXPECT_FALSE(rcu.Contains(0x100));
  EXPECT_TRUE(rcu.Contains(0x200));
}

TEST(Rcu, ContainsIsFalseAfterMatchIndexDrain) {
  RcuManager rcu(4);
  (void)rcu.Insert(0x100, Loc(0, 1, 7));
  ASSERT_EQ(rcu.MatchIndex(Loc(0, 1, 7)).size(), 1u);
  EXPECT_FALSE(rcu.Contains(0x100));
}

TEST(Rcu, FullFlag) {
  RcuManager rcu(2);
  EXPECT_FALSE(rcu.full());
  (void)rcu.Insert(0x1, Loc(0, 0, 1));
  (void)rcu.Insert(0x2, Loc(0, 0, 2));
  EXPECT_TRUE(rcu.full());
}

}  // namespace
}  // namespace redcache
