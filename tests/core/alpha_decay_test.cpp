// Decay behaviour of the alpha table: access *intensity*, not lifetime
// totals, is what qualifies a page.
#include <gtest/gtest.h>

#include "core/alpha_table.hpp"

namespace redcache {
namespace {

AlphaTable::Params DecayParams(std::uint32_t alpha,
                               std::uint32_t epochs_per_decay = 2) {
  AlphaTable::Params p;
  p.initial_alpha = alpha;
  p.adaptive = false;
  p.decay_shift = 1;
  p.epochs_per_decay = epochs_per_decay;
  return p;
}

TEST(AlphaDecay, ContinuousTrafficQualifies) {
  AlphaTable t(DecayParams(2));  // threshold 128 accesses
  bool hot = false;
  for (int i = 0; i < 128 && !hot; ++i) {
    hot = t.OnRequest(0);
  }
  EXPECT_TRUE(hot);
}

TEST(AlphaDecay, BurstsSeparatedByIdleEpochsFadeOut) {
  AlphaTable t(DecayParams(2));
  // 64-access bursts with 6 idle epochs in between (>>3 decay): progress
  // resets to ~8 each time -> never reaches 128.
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 64; ++i) {
      EXPECT_FALSE(t.OnRequest(0)) << "burst " << burst << " access " << i;
    }
    for (int e = 0; e < 6; ++e) t.AdvanceEpoch();
  }
}

TEST(AlphaDecay, BurstsWithinEpochAccumulate) {
  AlphaTable t(DecayParams(2));
  // Two 64-access bursts in the same epoch: 128 accesses -> hot.
  for (int i = 0; i < 63; ++i) (void)t.OnRequest(0);
  bool hot = false;
  for (int i = 0; i < 65 && !hot; ++i) hot = t.OnRequest(0);
  EXPECT_TRUE(hot);
}

TEST(AlphaDecay, SingleEpochGapDoesNotDecay) {
  AlphaTable t(DecayParams(2, /*epochs_per_decay=*/2));
  for (int i = 0; i < 64; ++i) (void)t.OnRequest(0);
  t.AdvanceEpoch();  // one epoch elapsed < epochs_per_decay
  bool hot = false;
  for (int i = 0; i < 64 && !hot; ++i) hot = t.OnRequest(0);
  EXPECT_TRUE(hot) << "progress should survive a single epoch gap";
}

TEST(AlphaDecay, HotPagesStayHotThroughIdle) {
  AlphaTable t(DecayParams(1));
  for (int i = 0; i < 64; ++i) (void)t.OnRequest(0);
  ASSERT_TRUE(t.IsHot(0));
  for (int e = 0; e < 50; ++e) t.AdvanceEpoch();
  EXPECT_TRUE(t.OnRequest(0)) << "hot status is latched, not decayed";
}

TEST(AlphaDecay, DisabledDecayAccumulatesForever) {
  AlphaTable::Params p = DecayParams(2);
  p.decay_shift = 0;
  AlphaTable t(p);
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 60; ++i) (void)t.OnRequest(0);
    for (int e = 0; e < 10; ++e) t.AdvanceEpoch();
  }
  bool hot = false;
  for (int i = 0; i < 10 && !hot; ++i) hot = t.OnRequest(0);
  EXPECT_TRUE(hot);  // 130 accesses total, nothing decayed
}

}  // namespace
}  // namespace redcache
