#include "core/gamma.hpp"

#include <algorithm>
#include <gtest/gtest.h>

namespace redcache {
namespace {

TEST(Gamma, HitsAboveGammaStepUpImmediately) {
  GammaController g({.initial_gamma = 8});
  g.OnHit(20);
  EXPECT_EQ(g.gamma(), 9u);
  g.OnHit(20);
  EXPECT_EQ(g.gamma(), 10u);
}

TEST(Gamma, HitsBelowGammaDoNotMoveIt) {
  GammaController g({.initial_gamma = 8});
  for (int i = 0; i < 100; ++i) g.OnHit(1);
  EXPECT_EQ(g.gamma(), 8u);  // young blocks say nothing about lifetimes
}

TEST(Gamma, LifetimeSamplesStepDownDamped) {
  GammaController g({.initial_gamma = 8, .down_damping = 4});
  g.OnLifetimeSample(3);
  g.OnLifetimeSample(3);
  g.OnLifetimeSample(3);
  EXPECT_EQ(g.gamma(), 8u);  // three low lifetimes: no movement yet
  g.OnLifetimeSample(3);
  EXPECT_EQ(g.gamma(), 7u);  // fourth steps down
}

TEST(Gamma, LongLifetimeResetsDownVotes) {
  GammaController g({.initial_gamma = 8, .down_damping = 2});
  g.OnLifetimeSample(3);   // one down-vote
  g.OnLifetimeSample(20);  // long lifetime: votes reset
  g.OnLifetimeSample(3);   // fresh count: one vote, no step
  EXPECT_EQ(g.gamma(), 8u);
}

TEST(Gamma, ClampsAtBounds) {
  GammaController g({.initial_gamma = 3, .min_gamma = 2, .max_gamma = 5,
                     .down_damping = 1});
  for (int i = 0; i < 10; ++i) g.OnLifetimeSample(1);
  EXPECT_EQ(g.gamma(), 2u);
  for (int i = 0; i < 10; ++i) g.OnHit(100);
  EXPECT_EQ(g.gamma(), 5u);
}

TEST(Gamma, LastWriteThresholdInclusive) {
  GammaController g({.initial_gamma = 4});
  EXPECT_FALSE(g.IsLastWrite(3));
  EXPECT_TRUE(g.IsLastWrite(4));
  EXPECT_TRUE(g.IsLastWrite(200));
}

TEST(Gamma, ConvergesDownToStablePhase) {
  GammaController g({.initial_gamma = 100, .down_damping = 4});
  for (int i = 0; i < 600; ++i) g.OnLifetimeSample(12);
  EXPECT_EQ(g.gamma(), 12u);  // samples >= gamma stop pushing down
}

TEST(Gamma, TracksPhaseChangeUpward) {
  GammaController g({.initial_gamma = 4});
  for (int i = 0; i < 50; ++i) g.OnHit(30);
  EXPECT_EQ(g.gamma(), 30u);  // adapted upward to the new lifetime
  EXPECT_EQ(g.updates(), 50u);
}

TEST(Gamma, PrematureInvalidationBoosts) {
  GammaController g({.initial_gamma = 5, .premature_boost = 2});
  g.OnPrematureInvalidation();
  EXPECT_EQ(g.gamma(), 7u);
  EXPECT_EQ(g.premature_invalidations(), 1u);
}

TEST(Gamma, PrematureBoostClampsAtMax) {
  GammaController g({.initial_gamma = 9, .max_gamma = 10,
                     .premature_boost = 4});
  g.OnPrematureInvalidation();
  EXPECT_EQ(g.gamma(), 10u);
}

TEST(Gamma, NoCollapseUnderInvalidationFeedback) {
  // Simulate the death spiral: gamma kills blocks early, so natural
  // evictions disappear and hits show only truncated counts. Gamma must
  // not collapse while premature-refetch signals arrive.
  GammaController g({.initial_gamma = 8, .down_damping = 4});
  constexpr std::uint32_t kTrueLifetime = 16;
  for (int round = 0; round < 300; ++round) {
    const std::uint32_t observed = std::min(kTrueLifetime, g.gamma());
    for (std::uint32_t r = 1; r <= observed; ++r) g.OnHit(r);
    if (observed < kTrueLifetime) {
      g.OnPrematureInvalidation();  // killed block came back
    } else {
      g.OnLifetimeSample(kTrueLifetime);
    }
  }
  EXPECT_GE(g.gamma(), kTrueLifetime - 2);
}

TEST(Gamma, MixedLifetimesSettleInUpperRange) {
  // Lifetimes alternate 4 and 20; gamma should settle between, biased by
  // the damping toward the upper values rather than the mean.
  GammaController g({.initial_gamma = 8, .down_damping = 4});
  for (int i = 0; i < 500; ++i) {
    g.OnLifetimeSample(4);
    g.OnHit(20);
    g.OnLifetimeSample(20);
  }
  EXPECT_GE(g.gamma(), 12u);
  EXPECT_LE(g.gamma(), 21u);
}

}  // namespace
}  // namespace redcache
